"""The reproducer corpus: failing scenarios as replayable JSON files.

Every failing (and subsequently shrunk) episode is written to the
corpus directory as one self-contained JSON file named after its spec
hash.  A reproducer carries an ``expect`` field:

* ``"fail"`` — a fresh finding: the episode is *expected* to fail this
  way.  This is what the fuzzer writes; it documents an open bug.
* ``"pass"`` — a regression guard: the bug was fixed, the scenario must
  now complete cleanly.  Committed corpus entries are flipped to
  ``pass`` as part of the fix and replayed by the test suite and the CI
  chaos-smoke job forever after.

Replay (:func:`replay_reproducer`) re-runs the spec and checks both the
expectation and — when the file recorded a signature — bit-identical
behaviour, so a reproducer doubles as a determinism probe.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import ChaosError
from ..experiments.runner import stable_hash

#: Default corpus location (relative to the working directory).
DEFAULT_CORPUS_DIR = "chaos-corpus"

_SCHEMA = 1


@dataclass
class Reproducer:
    """One corpus entry."""

    spec: Dict
    #: "fail" (open finding) or "pass" (fixed; regression guard).
    expect: str = "fail"
    #: Failure list recorded when the entry was written ("" for pass).
    failures: List[str] = dataclasses.field(default_factory=list)
    #: Episode signature at record time (determinism probe; optional).
    signature: Optional[str] = None
    #: Free-form provenance ("found by seed 7 episode 12; shrunk 9->1").
    note: str = ""

    def to_dict(self) -> Dict:
        return {"schema": _SCHEMA, "expect": self.expect,
                "failures": list(self.failures),
                "signature": self.signature, "note": self.note,
                "spec": self.spec}

    @classmethod
    def from_dict(cls, data: Dict) -> "Reproducer":
        if not isinstance(data, dict) or "spec" not in data:
            raise ChaosError("a reproducer is a mapping with a 'spec'")
        if data.get("schema") != _SCHEMA:
            raise ChaosError(f"unsupported reproducer schema "
                             f"{data.get('schema')!r}")
        expect = data.get("expect", "fail")
        if expect not in ("fail", "pass"):
            raise ChaosError(f"reproducer expect must be 'fail' or "
                             f"'pass', got {expect!r}")
        return cls(spec=data["spec"], expect=expect,
                   failures=list(data.get("failures", [])),
                   signature=data.get("signature"),
                   note=data.get("note", ""))

    @property
    def name(self) -> str:
        """Stable short identity derived from the spec alone."""
        return stable_hash(self.spec)[:12]


def save_reproducer(directory: str, repro: Reproducer) -> str:
    """Write one corpus entry; returns its path (stable per spec)."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"chaos-{repro.name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(repro.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_corpus(directory: str) -> List:
    """All reproducers in ``directory`` -> [(path, Reproducer)], sorted
    by filename so replay order is stable across machines."""
    if not os.path.isdir(directory):
        return []
    out = []
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".json"):
            continue
        path = os.path.join(directory, entry)
        with open(path, "r", encoding="utf-8") as fh:
            try:
                data = json.load(fh)
            except json.JSONDecodeError as exc:
                raise ChaosError(f"corrupt reproducer {path}: {exc}") from None
        out.append((path, Reproducer.from_dict(data)))
    return out


def replay_reproducer(repro: Reproducer,
                      run_fn: Optional[Callable[[Dict], Dict]] = None) -> Dict:
    """Re-run a corpus entry; returns a verdict dict.

    ``ok`` means the episode matched the expectation (and, when the
    entry recorded a signature, replayed bit-identically).
    """
    if run_fn is None:
        from .episode import run_episode
        run_fn = run_episode
    result = run_fn(repro.spec)
    problems: List[str] = []
    if repro.expect == "pass" and not result["ok"]:
        problems.append("expected clean run, got failures: "
                        + ", ".join(result["failures"]))
    if repro.expect == "fail" and result["ok"]:
        problems.append("expected failure, episode passed — if the bug "
                        "was fixed, flip this entry to expect=pass")
    if repro.signature and result["signature"] != repro.signature:
        problems.append(f"signature drift: recorded {repro.signature[:12]}, "
                        f"replayed {result['signature'][:12]}")
    return {"ok": not problems, "problems": problems, "result": result}
