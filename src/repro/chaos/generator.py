"""Seeded episode-spec sampling: the fuzzer's random scenario source.

A spec is a plain JSON-able dict — no live objects — so it can be
hashed (:func:`repro.experiments.runner.stable_hash`), shipped to a
pool worker, shrunk field-by-field, and committed to the corpus
verbatim.  All randomness comes from one
:func:`~repro.util.rng.rng_stream` substream per ``(seed, index)``
pair, so ``sample_spec(0, k)`` is the same scenario on every machine,
forever.

The sampler is deliberately *constraint-aware* rather than uniform:

* Same-target fail/slow windows are placed disjointly (each exclusion
  group keeps a ``next_free`` cursor), so every sampled plan passes
  :meth:`~repro.faults.plan.FaultPlan.validate` by construction —
  rejection sampling over the overlap rule would bias the schedule
  distribution in hard-to-reason-about ways.
* The client retry budget is *derived* from the sampled plan: attempts
  and per-attempt timeouts are sized so retries outlast the last
  fail-stop window with margin.  A ``retry-exhausted`` episode verdict
  therefore indicates a genuine recovery bug, not a tester that gave up
  too early.  ``total_timeout`` (the new wall-clock cap) is set past
  the horizon so it only fires on pathological schedules.
* Workloads are kept small (a few MiB) so a fuzz run of dozens of
  episodes finishes in CI-smoke time; the *shapes* (unaligned request
  sizes, shifted offsets, read re-runs warming the SSD cache) still
  cover the paper's interesting patterns.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List

from ..faults.plan import FaultEvent, FaultKind, FaultPlan, _target_key
from ..units import KiB, MiB
from ..util.rng import rng_stream

#: Current spec schema; bump on incompatible layout changes so stale
#: corpus entries fail loudly instead of replaying the wrong scenario.
SPEC_SCHEMA = 1

#: Per-episode budgets (see ``repro.chaos.episode._budget_guard``).
#: ``sim_time``/``events`` are deterministic; ``wall_clock`` is a
#: real-time backstop that only fires when the engine itself is stuck.
DEFAULT_BUDGET: Dict[str, float] = {
    "sim_time": 30.0,
    "events": 2_000_000,
    "wall_clock": 120.0,
}

#: Latest window start the sampler places (seconds of simulated time).
_FAULT_SPAN = 0.08

_REQUEST_SIZES = [4 * KiB, 16 * KiB, 64 * KiB, 65 * KiB, 96 * KiB]
_SHIFTS = [0, 1 * KiB, 4 * KiB]
_PARTITIONS = [8 * MiB, 64 * MiB]
_RETRY_TIMEOUTS = [0.02, 0.04, 0.08]


def _pick(rng, options: List):
    """Native-typed choice (``rng.choice`` returns numpy scalars)."""
    return options[int(rng.integers(0, len(options)))]


def _round(x: float, places: int = 4) -> float:
    """Spec floats are rounded so reproducer JSON stays human-sized."""
    return round(float(x), places)


# --------------------------------------------------------------- faults
def _sample_fault(rng, kinds: List[str], cluster: Dict,
                  next_free: Dict) -> FaultEvent:
    """One fault event, shifted forward past same-target windows."""
    kind = FaultKind(_pick(rng, kinds))
    server = int(rng.integers(0, cluster["num_servers"]))
    start = _round(rng.uniform(0.0, _FAULT_SPAN))
    duration = _round(rng.uniform(0.01, 0.06))
    kwargs: Dict = {"kind": kind, "server": server, "start": start,
                    "duration": duration}
    if kind is FaultKind.DEVICE_SLOW:
        kwargs["disk"] = int(rng.integers(0, cluster["disks_per_server"]))
        kwargs["device"] = ("ssd" if cluster["ibridge"]
                            and rng.random() < 0.25 else "hdd")
        kwargs["latency_mult"] = _round(rng.uniform(2.0, 12.0), 2)
        kwargs["bw_mult"] = _round(rng.uniform(1.0, 4.0), 2)
    elif kind is FaultKind.DEVICE_FAIL:
        kwargs["disk"] = int(rng.integers(0, cluster["disks_per_server"]))
    elif kind is FaultKind.SSD_FAIL:
        kwargs["policy"] = "drain" if rng.random() < 0.5 else "forfeit"
    elif kind is FaultKind.NET_DELAY:
        kwargs["delay"] = _round(rng.uniform(0.0005, 0.005))
        if rng.random() < 0.3:
            kwargs["server"] = None  # whole-fabric delay
    elif kind is FaultKind.NET_DROP:
        kwargs["drop_prob"] = _round(rng.uniform(0.05, 0.5), 2)
    event = FaultEvent(**kwargs)
    key = _target_key(event)
    if key is not None:
        floor = next_free.get(key, 0.0)
        if event.start < floor:
            event = dataclasses.replace(event, start=_round(floor))
        next_free[key] = event.start + event.duration + 0.005
    return event


def _sample_plan(rng, cluster: Dict, index: int) -> FaultPlan:
    kinds = [FaultKind.DEVICE_SLOW.value, FaultKind.DEVICE_FAIL.value,
             FaultKind.NET_DELAY.value, FaultKind.NET_DROP.value,
             FaultKind.SERVER_CRASH.value]
    if cluster["ibridge"]:
        kinds.append(FaultKind.SSD_FAIL.value)
    n = int(rng.integers(0, 5))
    next_free: Dict = {}
    events = [_sample_fault(rng, kinds, cluster, next_free)
              for _ in range(n)]
    # Sort by start so the plan reads chronologically in reproducers
    # (driver order is irrelevant to semantics: each event gets its own
    # driver process sleeping to its window).
    events.sort(key=lambda e: (e.start, e.kind.value))
    plan = FaultPlan(events=tuple(events), name=f"chaos:{index}")
    plan.validate()
    return plan


def _derive_retry(rng, plan: FaultPlan) -> Dict:
    """Retry parameters sized to outlast the sampled fault schedule."""
    timeout = _pick(rng, _RETRY_TIMEOUTS)
    horizon = plan.horizon()
    # Worst case a sub-request issued at t=0 must keep retrying until
    # the last window reverts; give ~2x margin on top.
    need = horizon + 0.2
    max_retries = min(40, max(6, math.ceil(need / timeout) + 2))
    return {
        "timeout": timeout,
        "max_retries": int(max_retries),
        "backoff_base": 0.002,
        "backoff_cap": 0.01,
        "total_timeout": _round(horizon + 5.0, 2),
    }


# -------------------------------------------------------------- sampling
def sample_spec(seed: int, index: int) -> Dict:
    """Sample episode ``index`` of fuzzing campaign ``seed``.

    Returns the plain-dict episode spec consumed by
    :func:`repro.chaos.episode.run_episode`.
    """
    rng = rng_stream(seed, f"chaos:{index}")
    cluster = {
        "num_servers": _pick(rng, [2, 3, 4]),
        "disks_per_server": _pick(rng, [1, 1, 2]),
        "ibridge": bool(rng.random() < 0.8),
        "ssd_partition": _pick(rng, _PARTITIONS),
    }
    op = "read" if rng.random() < 0.5 else "write"
    kind = "mpi-io-test" if rng.random() < 0.6 else "ior"
    workload = {
        "kind": kind,
        "op": op,
        "nprocs": _pick(rng, [2, 4, 8]),
        "request_size": _pick(rng, _REQUEST_SIZES),
        "iterations": int(rng.integers(2, 6)),
        "offset_shift": (_pick(rng, _SHIFTS)
                         if kind == "mpi-io-test" else 0),
        # Re-runs of the same program are the paper's read-side benefit
        # case: a warm pass leaves fragments in the SSD cache, so the
        # measured pass exercises cache hits under faults.
        "warm_runs": (1 if op == "read" and cluster["ibridge"]
                      and rng.random() < 0.4 else 0),
    }
    plan = _sample_plan(rng, cluster, index)
    spec = {
        "schema": SPEC_SCHEMA,
        "seed": int(rng.integers(0, 2**31 - 1)),
        "workload": workload,
        "cluster": cluster,
        "retry": _derive_retry(rng, plan),
        "faults": plan.to_dict(),
        "budget": dict(DEFAULT_BUDGET),
    }
    # FTL/GC-storm knobs sample *after* every pre-existing draw so the
    # substream prefix — and therefore the scenario that any older
    # (seed, index) pair maps to — is unchanged.  Storm windows compose
    # with everything, so no ``next_free`` bookkeeping is needed.
    cluster["ftl"] = bool(rng.random() < 0.3)
    if rng.random() < 0.25:
        target = (None if rng.random() < 0.5  # correlated fleet storm
                  else int(rng.integers(0, cluster["num_servers"])))
        storm = FaultEvent(kind=FaultKind.GC_STORM, server=target,
                           start=_round(rng.uniform(0.0, _FAULT_SPAN)),
                           duration=_round(rng.uniform(0.01, 0.05)))
        events = sorted(plan.events + (storm,),
                        key=lambda e: (e.start, e.kind.value))
        plan = FaultPlan(events=tuple(events), name=plan.name)
        plan.validate()
        spec["faults"] = plan.to_dict()
    # Shard-count sampling extends the substream the same append-only
    # way (older (seed, index) pairs replay unchanged).  Shards beyond
    # the server or rank count would leave empty shards idling at every
    # barrier, so the candidate set is capped; chaos workloads use no
    # barriers/collectives, so the sharded engine's rejection matrix
    # never fires.
    cluster["shards"] = 1
    if rng.random() < 0.35:
        cap = min(cluster["num_servers"], workload["nprocs"])
        options = [s for s in (2, 4) if s <= cap]
        if options:
            cluster["shards"] = _pick(rng, options)
    return spec
