"""Simulated MPI runtime: ranks, barriers, and MPI-IO style file access.

Ranks are simulation processes.  Each rank gets a :class:`RankContext`
exposing synchronous ``read_at``/``write_at`` (mirroring MPI-IO's
``File.Read_at``/``Write_at`` semantics: the call returns when the data
has been served by the storage system), an optional collective barrier,
and a ``compute`` call for modelled computation phases (used by BTIO).
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from ..devices.base import Op
from ..errors import WorkloadError
from ..pfs.cluster import Cluster
from ..sim import Barrier, Environment, Event

RankBody = Callable[["RankContext"], Generator]


class RankContext:
    """The API surface an MPI rank body programs against."""

    def __init__(self, run: "MPIRun", rank: int) -> None:
        self._run = run
        self.rank = rank
        self.env: Environment = run.cluster.env
        self._client = run.cluster.client(rank % run.client_nodes)
        self._collective_calls = 0

    @property
    def nprocs(self) -> int:
        return self._run.nprocs

    # -- I/O (yieldable events) ---------------------------------------
    def read_at(self, handle: int, offset: int, nbytes: int) -> Event:
        """Synchronous read; yield the returned event."""
        return self._client.read(handle, offset, nbytes, self.rank)

    def write_at(self, handle: int, offset: int, nbytes: int) -> Event:
        """Synchronous write; yield the returned event."""
        return self._client.write(handle, offset, nbytes, self.rank)

    def io(self, op: Op, handle: int, offset: int, nbytes: int) -> Event:
        if op is Op.WRITE:
            return self.write_at(handle, offset, nbytes)
        return self.read_at(handle, offset, nbytes)

    # -- collective I/O (two-phase, ROMIO-style) -----------------------
    def write_at_all(self, handle: int, offset: int, nbytes: int) -> Event:
        """Collective write: all ranks must call, in the same order."""
        return self._collective(Op.WRITE, handle, offset, nbytes)

    def read_at_all(self, handle: int, offset: int, nbytes: int) -> Event:
        """Collective read: all ranks must call, in the same order."""
        return self._collective(Op.READ, handle, offset, nbytes)

    def _collective(self, op: Op, handle: int, offset: int,
                    nbytes: int) -> Event:
        call_id = self._collective_calls
        self._collective_calls += 1
        return self._run.collective.submit(self.rank, op, handle, offset,
                                           nbytes, call_id)

    # -- synchronization ------------------------------------------------
    def barrier(self) -> Event:
        """Collective barrier across all ranks of this run."""
        return self._run.barrier.wait()

    def compute(self, seconds: float) -> Event:
        """Model a computation phase of ``seconds``."""
        return self.env.timeout(seconds)


class MPIRun:
    """One mpiexec-style job of ``nprocs`` ranks over a cluster."""

    def __init__(self, cluster: Cluster, nprocs: int,
                 client_nodes: Optional[int] = None) -> None:
        if nprocs < 1:
            raise WorkloadError(f"nprocs must be >= 1, got {nprocs}")
        self.cluster = cluster
        self.nprocs = nprocs
        # By default each rank runs on its own compute node (its own
        # client/NIC); pass a smaller number to pack ranks per node.
        self.client_nodes = client_nodes or nprocs
        self.barrier = Barrier(cluster.env, nprocs)
        self._rank_procs: List = []
        self._collective = None

    @property
    def collective(self):
        """Lazily-built two-phase collective I/O engine."""
        if self._collective is None:
            from .collective import CollectiveEngine
            self._collective = CollectiveEngine(self)
        return self._collective

    def launch(self, body: RankBody) -> Event:
        """Start every rank running ``body``; returns the all-done event."""
        env = self.cluster.env
        self._rank_procs = [
            env.process(body(RankContext(self, rank)), name=f"rank{rank}")
            for rank in range(self.nprocs)
        ]
        return env.all_of(self._rank_procs)

    def run_to_completion(self, body: RankBody) -> float:
        """Launch and run the simulation until all ranks finish.

        Returns the simulated completion time.
        """
        done = self.launch(body)
        self.cluster.env.run(until=done)
        return self.cluster.env.now
