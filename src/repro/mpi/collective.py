"""Two-phase collective I/O (ROMIO-style) and data sieving.

The paper's related-work section points out that MPI-IO middleware
optimizations — collective I/O and data sieving (Thakur et al.) — are
the classic *software* remedies for noncontiguous/unaligned access.
This module implements both over the simulated runtime so they can be
compared against iBridge (see ``repro.experiments.collective``):

* **Two-phase collective I/O**: all ranks of a collective call gather
  their (offset, size) pieces; the aggregate extent is partitioned into
  stripe-aligned *file domains*, one per aggregator rank; ranks shuffle
  their data to the owning aggregators over the interconnect; the
  aggregators then issue few, large, aligned requests.  Unaligned
  application patterns thus become aligned storage patterns — at the
  cost of an extra network exchange and synchronization.

* **Data sieving**: a single rank with a noncontiguous piece list reads
  the whole covering extent in one request (discarding the holes) when
  the holes are small; for writes it performs read-modify-write of the
  covering extent.

Both are faithful at the level this simulation cares about: which
requests of which sizes/alignments reach the data servers, and what the
exchange costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..devices.base import Op
from ..errors import WorkloadError
from ..sim import Environment, Event

Piece = Tuple[int, int]  # (offset, nbytes)


@dataclass
class _Round:
    """State of one in-progress collective call."""

    op: Op
    handle: int
    pieces: Dict[int, Piece] = field(default_factory=dict)
    done: Optional[Event] = None


class CollectiveEngine:
    """Coordinates two-phase collective I/O for one MPI run."""

    def __init__(self, run, aggregators: Optional[int] = None) -> None:
        self.run = run
        self.env: Environment = run.cluster.env
        cfg = run.cluster.config
        self.stripe_unit = cfg.stripe_unit
        self.network = run.cluster.network
        #: Number of aggregator ranks (ROMIO default: one per compute
        #: node; we default to one per data server).
        self.aggregators = aggregators or cfg.num_servers
        self._rounds: Dict[tuple, _Round] = {}
        self.exchanged_bytes = 0
        self.collective_calls = 0

    # ------------------------------------------------------------- joining
    def submit(self, rank: int, op: Op, handle: int, offset: int,
               nbytes: int, call_id: int) -> Event:
        """Rank ``rank``'s part of collective call ``call_id``.

        The returned event fires when the whole collective completes.
        All ranks must call with the same (op, handle, call_id).
        """
        if nbytes < 0 or offset < 0:
            raise WorkloadError("invalid collective piece")
        key = (op, handle, call_id)
        rnd = self._rounds.get(key)
        if rnd is None:
            rnd = _Round(op=op, handle=handle, done=self.env.event())
            self._rounds[key] = rnd
        if rank in rnd.pieces:
            raise WorkloadError(f"rank {rank} joined call {call_id} twice")
        rnd.pieces[rank] = (offset, nbytes)
        if len(rnd.pieces) == self.run.nprocs:
            del self._rounds[key]
            self.env.process(self._execute(rnd), name=f"coll-{call_id}")
        return rnd.done

    # ------------------------------------------------------------- domains
    def _file_domains(self, lo: int, hi: int) -> List[Piece]:
        """Partition [lo, hi) into stripe-aligned aggregator domains."""
        unit = self.stripe_unit
        total = hi - lo
        nagg = max(1, min(self.aggregators, -(-total // unit)))
        per = -(-total // nagg)
        per = -(-per // unit) * unit  # round up to the striping unit
        domains: List[Piece] = []
        start = (lo // unit) * unit
        cursor = start
        while cursor < hi:
            end = min(cursor + per, hi)
            domains.append((max(cursor, lo), end - max(cursor, lo)))
            cursor += per
        return [d for d in domains if d[1] > 0]

    def _execute(self, rnd: _Round):
        """Exchange phase + I/O phase, then release all ranks."""
        env = self.env
        self.collective_calls += 1
        pieces = [p for p in rnd.pieces.values() if p[1] > 0]
        if not pieces:
            rnd.done.succeed()
            return
        lo = min(off for off, _n in pieces)
        hi = max(off + n for off, n in pieces)
        payload = sum(n for _off, n in pieces)

        # Phase 1 — shuffle: each rank ships its piece to the owning
        # aggregator(s).  Cost model: the exchange is all-to-few over
        # the same NICs as storage traffic; aggregate wire time is
        # payload / bandwidth spread over the aggregators, plus one
        # latency + per-message overhead per participating rank.
        domains = self._file_domains(lo, hi)
        netcfg = self.network.config
        wire = payload / netcfg.bandwidth / max(1, len(domains))
        per_rank_overhead = netcfg.message_overhead + netcfg.latency
        yield env.timeout(wire + per_rank_overhead)
        self.exchanged_bytes += payload

        # Phase 2 — aggregators issue one large aligned request each.
        # Aggregator a uses compute node a's client.
        events = []
        for idx, (off, nbytes) in enumerate(domains):
            client = self.run.cluster.client(idx % self.run.client_nodes)
            events.append(client.submit(rnd.op, rnd.handle, off, nbytes,
                                        rank=-(idx + 1)))
        yield env.all_of(events)
        rnd.done.succeed()


# ---------------------------------------------------------------- sieving
def sieve_plan(pieces: List[Piece], max_hole: int = 64 * 1024,
               max_extent: int = 4 * 1024 * 1024) -> List[Piece]:
    """Data-sieving plan: coalesce a sorted noncontiguous piece list.

    Neighbouring pieces whose gap is at most ``max_hole`` are covered by
    one extent (the hole is read and discarded / rewritten), bounded by
    ``max_extent`` per I/O.  Returns the covering extents.
    """
    if not pieces:
        return []
    if any(n <= 0 or off < 0 for off, n in pieces):
        raise WorkloadError("invalid piece in sieve plan")
    pieces = sorted(pieces)
    plan: List[Piece] = []
    cur_off, cur_len = pieces[0]
    for off, n in pieces[1:]:
        gap = off - (cur_off + cur_len)
        merged_len = off + n - cur_off
        if gap < 0:
            raise WorkloadError("overlapping pieces in sieve plan")
        if gap <= max_hole and merged_len <= max_extent:
            cur_len = merged_len
        else:
            plan.append((cur_off, cur_len))
            cur_off, cur_len = off, n
    plan.append((cur_off, cur_len))
    return plan


def sieved_io(ctx, op: Op, handle: int, pieces: List[Piece],
              max_hole: int = 64 * 1024):
    """Generator performing a noncontiguous access with data sieving.

    Reads: issue the covering extents.  Writes: ROMIO's read-modify-
    write — read each covering extent, then write it back whole.
    Yields until all I/O completes; returns the plan used.
    """
    plan = sieve_plan(pieces, max_hole=max_hole)
    if op is Op.READ:
        for off, n in plan:
            yield ctx.read_at(handle, off, n)
    else:
        for off, n in plan:
            # RMW: the covering extent must be fetched before partial
            # regions can be merged and written back.
            yield ctx.read_at(handle, off, n)
            yield ctx.write_at(handle, off, n)
    return plan
