"""Simulated MPI runtime (ranks, barrier, MPI-IO style file access,
two-phase collective I/O and data sieving)."""

from .collective import CollectiveEngine, sieve_plan, sieved_io
from .runtime import MPIRun, RankContext

__all__ = ["MPIRun", "RankContext", "CollectiveEngine", "sieve_plan",
           "sieved_io"]
