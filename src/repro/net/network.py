"""Interconnect model.

The paper's testbed uses dual-rail 4X QDR InfiniBand — fast enough that
the network is never the bottleneck, but every PVFS2 message still pays
a fixed software/latency cost.  We model each endpoint with an egress
and an ingress NIC of finite bandwidth (capacity-1 resources, so
concurrent messages at one endpoint serialize their wire time) plus a
per-message overhead and propagation latency.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..config import NetworkConfig
from ..sim import Environment, Event, Resource


@dataclass
class NetworkStats:
    """Aggregate transfer counters."""

    messages: int = 0
    bytes: int = 0
    wire_time: float = 0.0
    #: Messages lost to an active drop-fault window (never delivered).
    dropped: int = 0
    #: Accumulated extra latency charged by delay-fault windows.
    fault_delay_time: float = 0.0


_fault_ids = itertools.count(1)


@dataclass
class NetFault:
    """One active network fault window (installed by the injector).

    ``endpoints`` limits the fault to messages whose source *or*
    destination is in the set; ``None`` degrades the whole fabric.
    Multiple overlapping windows stack: delays add, drop probabilities
    combine independently.
    """

    delay: float = 0.0
    drop_prob: float = 0.0
    endpoints: Optional[Set[str]] = None
    #: Deterministic RNG for drop decisions (a :mod:`repro.util.rng`
    #: substream; required when ``drop_prob > 0``).
    rng: object = None
    id: int = field(default_factory=lambda: next(_fault_ids))

    def applies(self, src: str, dst: str) -> bool:
        return (self.endpoints is None or src in self.endpoints
                or dst in self.endpoints)


class Network:
    """Message fabric connecting clients, data servers and the MDS."""

    def __init__(self, env: Environment, config: NetworkConfig | None = None) -> None:
        self.env = env
        self.config = config or NetworkConfig()
        self.config.validate()
        self._egress: Dict[str, Resource] = {}
        self._ingress: Dict[str, Resource] = {}
        self.stats = NetworkStats()
        self._faults: List[NetFault] = []
        #: Observability tracer (:class:`repro.obs.span.Tracer`); wired
        #: by the cluster's ObsRuntime, None on untraced runs.
        self.obs = None

    # ------------------------------------------------------------- faults
    def add_fault(self, fault: NetFault) -> NetFault:
        """Activate a fault window (returned so it can be removed)."""
        self._faults.append(fault)
        return fault

    def remove_fault(self, fault: NetFault) -> None:
        """Deactivate a fault window (idempotent)."""
        try:
            self._faults.remove(fault)
        except ValueError:
            pass

    @property
    def faults_active(self) -> int:
        return len(self._faults)

    def _fault_effects(self, src: str, dst: str):
        """(extra_delay, dropped?) under the currently active windows."""
        delay = 0.0
        dropped = False
        for fault in self._faults:
            if not fault.applies(src, dst):
                continue
            delay += fault.delay
            if (not dropped and fault.drop_prob > 0.0 and fault.rng is not None
                    and fault.rng.random() < fault.drop_prob):
                dropped = True
        return delay, dropped

    def _nic(self, table: Dict[str, Resource], endpoint: str) -> Resource:
        nic = table.get(endpoint)
        if nic is None:
            nic = Resource(self.env, capacity=1)
            table[endpoint] = nic
        return nic

    def send(self, src: str, dst: str, nbytes: int = 0,
             obs_parent=None) -> Event:
        """Deliver a message; the returned event fires at delivery time.

        ``nbytes`` is payload size; control messages pass 0 and still
        pay overhead + latency.  ``obs_parent`` (a span) traces the
        message as a network span from send to delivery.
        """
        done = self.env.event()
        span = None
        obs = self.obs
        if obs is not None and obs_parent is not None:
            span = obs.start("net.msg", "network", obs_parent.trace_id,
                             self.env.now, parent=obs_parent, src=src,
                             dst=dst, nbytes=int(nbytes))
        self.env.process(self._transfer(src, dst, int(nbytes), done, span),
                         name=f"net:{src}->{dst}")
        return done

    def send_local_leg(self, src: str, dst: str, nbytes: int = 0) -> Event:
        """The *sender-side half* of a cross-shard message.

        Used by :mod:`repro.sim.parallel` when ``dst`` lives on another
        shard: the message pays its software overhead, fault effects,
        and egress wire time here, and the returned event fires at the
        local *departure* instant with value ``True`` (or ``False`` if a
        drop-fault window ate the message — the record must then not be
        posted to the mailbox).  The propagation latency is paid on the
        receiving shard (arrival = departure + latency); the remote
        ingress NIC is not modelled — the documented fidelity loss of
        the sharded network boundary (DESIGN.md §14).
        """
        done = self.env.event()
        self.env.process(self._local_leg(src, dst, int(nbytes), done),
                         name=f"net:{src}=>{dst}")
        return done

    def _local_leg(self, src: str, dst: str, nbytes: int, done: Event):
        env = self.env
        cfg = self.config
        yield env.timeout(cfg.message_overhead)
        if self._faults:
            extra_delay, dropped = self._fault_effects(src, dst)
            if dropped:
                self.stats.dropped += 1
                done.succeed(False)
                return
            if extra_delay > 0.0:
                self.stats.fault_delay_time += extra_delay
                yield env.timeout(extra_delay)
        wire = nbytes / cfg.bandwidth
        if nbytes > 0:
            eg = self._nic(self._egress, src).request()
            yield eg
            yield env.timeout(wire)
            self._nic(self._egress, src).release(eg)
        self.stats.messages += 1
        self.stats.bytes += nbytes
        self.stats.wire_time += wire
        done.succeed(True)

    def _transfer(self, src: str, dst: str, nbytes: int, done: Event,
                  span=None):
        env = self.env
        cfg = self.config
        yield env.timeout(cfg.message_overhead)
        if self._faults:
            extra_delay, dropped = self._fault_effects(src, dst)
            if dropped:
                # The message is lost: ``done`` never fires.  Recovery
                # is the sender's job (client timeout/retry).
                self.stats.dropped += 1
                if span is not None:
                    span.annotate(dropped=True)
                    self.obs.finish(span, env.now)
                return
            if extra_delay > 0.0:
                self.stats.fault_delay_time += extra_delay
                yield env.timeout(extra_delay)
        wire = nbytes / cfg.bandwidth
        if nbytes > 0:
            # Hold both NICs for the wire time: concurrent transfers at
            # an endpoint share its link serially.
            eg = self._nic(self._egress, src).request()
            yield eg
            ing = self._nic(self._ingress, dst).request()
            yield ing
            yield env.timeout(wire)
            self._nic(self._ingress, dst).release(ing)
            self._nic(self._egress, src).release(eg)
        yield env.timeout(cfg.latency)
        self.stats.messages += 1
        self.stats.bytes += nbytes
        self.stats.wire_time += wire
        if span is not None and self.obs is not None:
            self.obs.finish(span, env.now)
        done.succeed()
