"""Interconnect model.

The paper's testbed uses dual-rail 4X QDR InfiniBand — fast enough that
the network is never the bottleneck, but every PVFS2 message still pays
a fixed software/latency cost.  We model each endpoint with an egress
and an ingress NIC of finite bandwidth (capacity-1 resources, so
concurrent messages at one endpoint serialize their wire time) plus a
per-message overhead and propagation latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..config import NetworkConfig
from ..sim import Environment, Event, Resource


@dataclass
class NetworkStats:
    """Aggregate transfer counters."""

    messages: int = 0
    bytes: int = 0
    wire_time: float = 0.0


class Network:
    """Message fabric connecting clients, data servers and the MDS."""

    def __init__(self, env: Environment, config: NetworkConfig | None = None) -> None:
        self.env = env
        self.config = config or NetworkConfig()
        self.config.validate()
        self._egress: Dict[str, Resource] = {}
        self._ingress: Dict[str, Resource] = {}
        self.stats = NetworkStats()

    def _nic(self, table: Dict[str, Resource], endpoint: str) -> Resource:
        nic = table.get(endpoint)
        if nic is None:
            nic = Resource(self.env, capacity=1)
            table[endpoint] = nic
        return nic

    def send(self, src: str, dst: str, nbytes: int = 0) -> Event:
        """Deliver a message; the returned event fires at delivery time.

        ``nbytes`` is payload size; control messages pass 0 and still
        pay overhead + latency.
        """
        done = self.env.event()
        self.env.process(self._transfer(src, dst, int(nbytes), done),
                         name=f"net:{src}->{dst}")
        return done

    def _transfer(self, src: str, dst: str, nbytes: int, done: Event):
        env = self.env
        cfg = self.config
        yield env.timeout(cfg.message_overhead)
        wire = nbytes / cfg.bandwidth
        if nbytes > 0:
            # Hold both NICs for the wire time: concurrent transfers at
            # an endpoint share its link serially.
            eg = self._nic(self._egress, src).request()
            yield eg
            ing = self._nic(self._ingress, dst).request()
            yield ing
            yield env.timeout(wire)
            self._nic(self._ingress, dst).release(ing)
            self._nic(self._egress, src).release(eg)
        yield env.timeout(cfg.latency)
        self.stats.messages += 1
        self.stats.bytes += nbytes
        self.stats.wire_time += wire
        done.succeed()
