"""Network fabric model."""

from .network import Network, NetworkStats

__all__ = ["Network", "NetworkStats"]
