"""Network fabric model."""

from .network import NetFault, Network, NetworkStats

__all__ = ["Network", "NetworkStats", "NetFault"]
