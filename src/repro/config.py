"""Configuration dataclasses for the simulated cluster.

Defaults mirror the paper's testbed (Section III-A): eight data servers
plus one metadata server, PVFS2 with a 64 KB striping unit, one HP
7200-RPM disk and one 120 GB SSD per data server (10 GB partition used
by iBridge), 20 KB thresholds for both regular random requests and
fragments, CFQ on the disk and Noop on the SSD.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from .errors import ConfigError
from .units import GiB, KiB, MiB, MS, US


class ReturnPolicy(str, Enum):
    """How the iBridge benefit (return) of SSD redirection is computed.

    ``PAPER`` follows Eq. 1 literally: the return compares the
    candidate's estimated *per-request* disk service time against the
    EWMA of recent per-request service times.  In a mixed stream a
    fragment is cheaper per-request than a full stripe piece (it moves
    less data), so its mean return is near zero and admissions happen
    only through seek-distance noise — the cache fills slowly and
    decisions are erratic.  Eq. 3's sibling boost is then what reliably
    pushes gating fragments over the threshold (see the ``degraded``
    experiment and DESIGN.md §6.1).

    ``EFFICIENCY`` (default) normalizes service times per striping unit
    of data moved, matching the paper's stated intent ("slow the disk
    down" in terms of *disk efficiency*): a 1 KB fragment that costs a
    full positioning delay is charged as if the disk spent that
    positioning time for 1/64th of a stripe of useful data.
    """

    PAPER = "paper"
    EFFICIENCY = "efficiency"


@dataclass(frozen=True)
class HDDConfig:
    """Hard disk model parameters.

    The positioning model is ``D_to_T(seek_distance) + rotational_miss``
    for non-contiguous requests.  ``seek_base``/``seek_full`` define a
    concave (square-root) seek curve from a one-sector hop to a
    full-stroke seek, following the offline-profiling approach of Huang
    et al. that the paper adopts for its Eq. 1 estimator.  Values are
    NCQ-effective (queue-depth-reduced) rather than raw mechanical
    latencies.
    """

    capacity: int = 1024 * GiB
    seq_read_bw: float = 85 * MiB  # bytes/s, Table II
    seq_write_bw: float = 80 * MiB
    seek_base: float = 0.15 * MS          # minimum non-zero seek
    seek_full: float = 8.5 * MS           # full-stroke seek
    rotational_miss: float = 2.0 * MS     # effective rotational latency
    #: Extra positioning for small non-contiguous writes: sub-page
    #: boundaries force read-modify-write plus an extra rotation.  Large
    #: writes amortize this through the page cache and pay only
    #: ``write_large_penalty``.
    write_settle: float = 7.0 * MS
    write_settle_threshold: int = 20 * 1024
    write_large_penalty: float = 0.3 * MS
    #: Forward window within which a *write* is priced as a sweep
    #: continuation.  Much smaller than ``skip_window``: an isolated
    #: write landing ahead of the head still pays its read-modify-write
    #: penalty unless it is part of a dense ascending burst (e.g. the
    #: iBridge writeback daemon's sorted batches).
    write_sweep_window: int = 256 * 1024
    #: A sweep is only a sweep while the device stays busy: if the disk
    #: idled longer than this between dispatches, the platter has
    #: rotated away and the next write pays a full reposition even when
    #: it is forward-adjacent.  This is what makes a synchronous stream
    #: of tiny writes (BTIO) slow on the stock system.
    sweep_idle_reset: float = 0.3 * MS
    #: Contiguity slack: a request starting within this many bytes of the
    #: current head position is treated as (near-)sequential.
    contiguity_slack: int = 0
    #: Maximum forward distance servable by letting the media pass under
    #: the head (cost = distance / transfer rate) instead of a re-seek.
    #: The model charges min(pass-over, seek + rotation) for forward
    #: skips; this is what lets a disk stream over small holes left by
    #: fragments that iBridge redirected to the SSD.
    skip_window: int = 4 * 1024 * 1024

    def validate(self) -> None:
        if self.capacity <= 0:
            raise ConfigError("HDD capacity must be positive")
        if min(self.seq_read_bw, self.seq_write_bw) <= 0:
            raise ConfigError("HDD bandwidths must be positive")
        if self.seek_full < self.seek_base:
            raise ConfigError("seek_full must be >= seek_base")
        if min(self.seek_base, self.rotational_miss, self.write_settle,
               self.write_large_penalty) < 0:
            raise ConfigError("HDD latencies must be non-negative")
        if self.skip_window < 0:
            raise ConfigError("skip_window must be non-negative")
        if self.write_settle_threshold < 0:
            raise ConfigError("write_settle_threshold must be non-negative")
        if self.write_sweep_window < 0:
            raise ConfigError("write_sweep_window must be non-negative")
        if self.sweep_idle_reset < 0:
            raise ConfigError("sweep_idle_reset must be non-negative")


@dataclass(frozen=True)
class SSDConfig:
    """SSD model parameters, calibrated to Table II corner bandwidths.

    ``read_setup``/``write_setup`` are the per-command costs for
    non-contiguous accesses; they are derived so that 4 KB random
    accesses reproduce the paper's random corners while streaming hits
    the sequential corners.
    """

    capacity: int = 120 * GiB
    seq_read_bw: float = 160 * MiB
    seq_write_bw: float = 140 * MiB
    read_setup: float = 40.7 * US
    write_setup: float = 102.3 * US

    # ---- FTL / garbage-collection model (repro.devices.ftl) ----------
    #: Model the drive's internals: a page-mapped FTL with
    #: over-provisioning, background/foreground garbage collection, a
    #: write-amplification ledger, and GC-window read variability.
    #: Off by default — the plain Table-II timing model is unchanged.
    ftl_enabled: bool = False
    #: Flash page size (the FTL's mapping granularity).
    ftl_page_size: int = 4 * KiB
    #: Pages per erase block (64 x 4 KiB = 256 KiB erase blocks).
    ftl_pages_per_block: int = 64
    #: Physical capacity = logical capacity * (1 + over-provision).
    ftl_over_provision: float = 0.25
    #: Foreground GC engages when the free-block fraction drops below
    #: this...
    gc_low_watermark: float = 0.10
    #: ...and collects until it climbs back above this.
    gc_high_watermark: float = 0.25
    #: Time to erase one block.
    gc_erase_time: float = 2.0 * MS
    #: Foreground GC charge cap per command in "throttle" mode; "pause"
    #: mode charges a whole collection burst to the unlucky command.
    gc_slice: float = 1.5 * MS
    #: "throttle" (spread GC stalls over commands) or "pause"
    #: (stop-and-collect bursts).
    gc_mode: str = "throttle"
    #: Fleet GC scheduling across the per-server SSD array:
    #: "unsync" (each drive collects on its own watermark, the
    #: tail-magnifying default), "sync" (stop-the-fleet: any drive's
    #: pressure opens a fleet-wide collection window so stalls align
    #: across stripes), or "stagger" (round-robin time slots; at most
    #: one drive collects at a time).
    gc_policy: str = "unsync"
    #: Stagger policy: length of one drive's collection turn.
    gc_stagger_slot: float = 20 * MS
    #: Upper bound of the uniform extra read latency while a drive is
    #: under GC pressure (read/program/erase contention on the chip).
    gc_read_jitter: float = 1.0 * MS

    def validate(self) -> None:
        if self.capacity <= 0:
            raise ConfigError("SSD capacity must be positive")
        if min(self.seq_read_bw, self.seq_write_bw) <= 0:
            raise ConfigError("SSD bandwidths must be positive")
        if min(self.read_setup, self.write_setup) < 0:
            raise ConfigError("SSD setup times must be non-negative")
        if self.ftl_page_size <= 0:
            raise ConfigError("ftl_page_size must be positive")
        if self.ftl_pages_per_block < 2:
            raise ConfigError("ftl_pages_per_block must be >= 2")
        if self.ftl_over_provision <= 0:
            raise ConfigError("ftl_over_provision must be positive")
        if not 0.0 < self.gc_low_watermark < self.gc_high_watermark < 1.0:
            raise ConfigError(
                "GC watermarks need 0 < low < high < 1, got "
                f"{self.gc_low_watermark}/{self.gc_high_watermark}")
        if self.gc_erase_time < 0 or self.gc_slice < 0:
            raise ConfigError("GC times must be non-negative")
        if self.gc_mode not in ("throttle", "pause"):
            raise ConfigError(f"unknown gc_mode {self.gc_mode!r}")
        if self.gc_policy not in ("unsync", "sync", "stagger"):
            raise ConfigError(f"unknown gc_policy {self.gc_policy!r}")
        if self.gc_stagger_slot <= 0:
            raise ConfigError("gc_stagger_slot must be positive")
        if self.gc_read_jitter < 0:
            raise ConfigError("gc_read_jitter must be non-negative")
        if self.ftl_enabled:
            pages = -(-self.capacity // self.ftl_page_size)
            spare = int(pages * self.ftl_over_provision)
            if spare < 4 * self.ftl_pages_per_block:
                raise ConfigError(
                    "FTL over-provisioning must cover at least 4 erase "
                    "blocks; shrink ftl_pages_per_block or raise "
                    "ftl_over_provision/capacity")


@dataclass(frozen=True)
class SchedulerConfig:
    """Block-layer scheduler parameters."""

    #: Scheduler kind: "cfq", "noop", or "deadline".
    kind: str = "cfq"
    #: Max contiguous merge size for one dispatched request.
    max_merge_bytes: int = 512 * KiB
    #: Merge contiguous requests across processes at insert time (Linux
    #: elevator semantics).  CFQ still *dispatches* per-stream; disabling
    #: this restricts merging to within a stream (ablation).
    global_merge: bool = True
    #: Only merge into queued requests younger than this.  Models the
    #: bounded merge opportunity of a real data server (plug windows,
    #: Trove flow buffers): a request that has been sitting in the queue
    #: has usually already been set up for dispatch.  This is what keeps
    #: saturation from silently reassembling unaligned pieces, matching
    #: the paper's Fig. 2(d) observation.
    merge_window: float = 2.0 * MS
    #: CFQ: number of requests dispatched from one stream's queue before
    #: rotating to the next stream.  Large enough that a sorted
    #: background writeback burst is served as a real sweep.
    quantum: int = 8
    #: CFQ: how long to idle waiting for the active stream's next request.
    #: Linux CFQ stops idling for streams with long think times (our MPI
    #: ranks always have long think times), so the effective default is
    #: small.
    idle_window: float = 0.2 * MS

    def validate(self) -> None:
        if self.kind not in ("cfq", "noop", "deadline"):
            raise ConfigError(f"unknown scheduler kind {self.kind!r}")
        if self.max_merge_bytes < 4 * KiB:
            raise ConfigError("max_merge_bytes unreasonably small")
        if self.quantum < 1:
            raise ConfigError("quantum must be >= 1")
        if self.idle_window < 0:
            raise ConfigError("idle_window must be non-negative")
        if self.merge_window < 0:
            raise ConfigError("merge_window must be non-negative")


@dataclass(frozen=True)
class NetworkConfig:
    """Interconnect model (dual-rail 4X QDR InfiniBand in the paper)."""

    latency: float = 20 * US          # one-way message latency
    bandwidth: float = 3200 * MiB     # per-NIC bandwidth, bytes/s
    #: Fixed per-message software overhead (PVFS2 request processing).
    message_overhead: float = 30 * US

    def validate(self) -> None:
        if self.latency < 0 or self.message_overhead < 0:
            raise ConfigError("network latencies must be non-negative")
        if self.bandwidth <= 0:
            raise ConfigError("network bandwidth must be positive")


@dataclass(frozen=True)
class IBridgeConfig:
    """iBridge policy parameters (paper Section II)."""

    enabled: bool = False
    #: SSD partition size available to iBridge (10 GB in the paper).
    ssd_partition: int = 10 * GiB
    #: Requests smaller than this are "regular random" candidates.
    random_threshold: int = 20 * KiB
    #: Sub-requests smaller than this (with siblings) are fragments.
    fragment_threshold: int = 20 * KiB
    #: How the redirection benefit is computed (see ReturnPolicy).
    return_policy: ReturnPolicy = ReturnPolicy.EFFICIENCY
    #: Period of the per-server T-value report to the metadata server.
    report_period: float = 1.0
    #: EWMA weights from Eq. 1 (old, new).
    ewma_old_weight: float = 1.0 / 8.0
    ewma_new_weight: float = 7.0 / 8.0
    #: Dynamic partitioning between random requests and fragments.  When
    #: False, ``static_split`` gives the (random, fragment) shares.
    dynamic_partition: bool = True
    static_split: tuple = (0.5, 0.5)
    #: Idle window before background writeback / admission copies run.
    writeback_idle: float = 2.0 * MS
    #: Max bytes coalesced into one writeback pass batch.
    writeback_batch: int = 4 * MiB
    #: Admit read-miss data into the SSD cache (pre-loading for reruns).
    admit_reads: bool = True
    #: Use the striping-magnification sibling term of Eq. 3.
    use_sibling_term: bool = True
    #: Write redirected data to the SSD log-structured store (paper
    #: behaviour).  False = in-place SSD writes (ablation).
    log_structured: bool = True

    def validate(self) -> None:
        if self.ssd_partition < 0:
            raise ConfigError("ssd_partition must be non-negative")
        if self.random_threshold <= 0 or self.fragment_threshold <= 0:
            raise ConfigError("thresholds must be positive")
        if self.report_period <= 0:
            raise ConfigError("report_period must be positive")
        if abs(self.ewma_old_weight + self.ewma_new_weight - 1.0) > 1e-9:
            raise ConfigError("EWMA weights must sum to 1")
        if not self.dynamic_partition:
            a, b = self.static_split
            if a < 0 or b < 0 or abs(a + b - 1.0) > 1e-9:
                raise ConfigError("static_split must be non-negative and sum to 1")


@dataclass(frozen=True)
class AuditConfig:
    """The invariant-auditing / watchdog subsystem (:mod:`repro.audit`).

    Disabled by default: production-size runs should not pay the shadow
    accounting.  Tests and examples enable it to catch byte-conservation
    violations, cache-coherence drift, and simulation livelocks online.
    """

    enabled: bool = False
    #: Raise :class:`repro.errors.AuditError` at the violation site.
    #: When False, violations are recorded on the runtime (and traced)
    #: but the run continues — useful for surveying a misbehaving run.
    strict: bool = True
    #: Shadow the MappingTable / LogStore / PartitionManager after every
    #: mutation and check that their accounts agree.
    check_coherence: bool = True
    #: Track payload bytes end-to-end and assert conservation per read
    #: and at end-of-run drain.
    check_conservation: bool = True
    #: Run the livelock/stall watchdog process.
    watchdog: bool = True
    #: Simulated seconds without a single block-request completion
    #: (while work is pending) before the watchdog fires.  Device
    #: service times are ms-scale, so seconds of silence mean a stall.
    watchdog_window: float = 2.0
    #: Write the structured event trace to this JSONL file (None = keep
    #: an in-memory ring only).
    trace_path: Optional[str] = None
    #: Events kept in the in-memory ring buffer.
    trace_limit: int = 4096

    def validate(self) -> None:
        if self.watchdog_window <= 0:
            raise ConfigError("watchdog_window must be positive")
        if self.trace_limit < 0:
            raise ConfigError("trace_limit must be non-negative")


@dataclass(frozen=True)
class ObsConfig:
    """The observability layer (:mod:`repro.obs`): tracing + metrics.

    Disabled by default, following the ``BlockTracer`` pattern: with
    ``enabled`` False no tracer or registry is built, instrumented
    sites see a ``None`` attribute, and a run pays one attribute load
    per site (measured by ``benchmarks/perf/obs_bench.py``).
    """

    enabled: bool = False
    #: Record request span trees (client → network → server → device).
    trace: bool = True
    #: Run the metrics registry + sim-time sampler process.  Note the
    #: sampler consumes event-heap sequence numbers, so enabling metrics
    #: perturbs event schedules — this config is part of the experiment
    #: cache key for exactly that reason.
    metrics: bool = True
    #: Simulated seconds between metric samples.
    sample_period: float = 0.05
    #: Spans retained in memory before counting drops.
    max_spans: int = 200_000
    #: Append span JSONL here at end of run (None = in-memory only).
    trace_path: Optional[str] = None
    #: Append metrics JSONL here at end of run (None = in-memory only).
    metrics_path: Optional[str] = None
    #: Write the final Prometheus-text metrics snapshot here at end of
    #: run (None = off).  Overwritten per cluster — exposition text has
    #: one series per line, so unlike JSONL it cannot append; the file
    #: always holds the latest cluster's final state, scrape-style.
    metrics_text_path: Optional[str] = None
    #: Stream spans to ``trace_path`` incrementally: after this many
    #: span closures the pending batch is appended and fsync-flushed, so
    #: traces from aborted / OOM-killed / budget-killed runs survive up
    #: to the last batch instead of vanishing with ``finish_run``.
    #: ``0`` restores export-at-end-of-run-only.  Purely I/O-side: the
    #: flush is driven by span closures, not by a sim process, so it
    #: never perturbs event schedules.
    flush_spans: int = 256
    #: Sim-seconds between timeline ticks (:mod:`repro.obs.timeline`).
    #: ``0`` (default) disables the recorder entirely — no process, no
    #: ring buffer, no per-event cost.  When positive, a sim process
    #: snapshots every registry gauge each tick (cumulative series are
    #: additionally emitted as per-second rates) into a bounded ring
    #: buffer; like the metrics sampler, the ticker consumes event-heap
    #: sequence numbers, so this knob is part of the cache key via
    #: ObsConfig.
    timeline_dt: float = 0.0
    #: Timeline rows retained in the ring buffer (oldest evicted first).
    timeline_limit: int = 100_000
    #: Append timeline JSONL here at end of run (None = in-memory only).
    timeline_path: Optional[str] = None
    #: 1-in-N root-trace sampling: only parent requests whose trace id
    #: is divisible by N keep their span trees; the other N-1 traces
    #: allocate recycled (slab) spans that are dropped at close.  The
    #: decision is a pure function of the trace id, so it propagates
    #: down the whole request tree (client → network → server → block
    #: layer) without any extra wire state, and every *retained* trace
    #: is complete — the critical-path analyzer's per-kind breakdowns
    #: still sum exactly to root latency.  ``1`` (default) samples
    #: everything and is bit-identical to the pre-sampling tracer.
    trace_sample_n: int = 1

    def validate(self) -> None:
        if self.sample_period <= 0:
            raise ConfigError("sample_period must be positive")
        if self.max_spans < 0:
            raise ConfigError("max_spans must be non-negative")
        if self.flush_spans < 0:
            raise ConfigError("flush_spans must be non-negative")
        if self.trace_sample_n < 1:
            raise ConfigError("trace_sample_n must be >= 1")
        if self.timeline_dt < 0:
            raise ConfigError("timeline_dt must be non-negative")
        if self.timeline_limit < 0:
            raise ConfigError("timeline_limit must be non-negative")
        if self.timeline_dt > 0 and not self.metrics:
            raise ConfigError("the timeline recorder samples the metrics "
                              "registry; timeline_dt > 0 needs metrics=True")
        if self.enabled and not (self.trace or self.metrics):
            raise ConfigError("obs enabled with neither trace nor metrics")


@dataclass(frozen=True)
class RetryConfig:
    """Client-side timeout/retry for PFS sub-requests.

    Enabled by default with a deliberately generous timeout: even
    outside fault-injection runs, a data server that never replies must
    surface as a typed :class:`repro.errors.RequestTimeoutError` instead
    of hanging the simulation silently (the livelock watchdog only runs
    when auditing is on).  Fault experiments tighten these bounds to
    exercise the recovery path.
    """

    enabled: bool = True
    #: Seconds of simulated time to wait for one sub-request round trip
    #: before retrying.  Device service times are ms-scale, so tens of
    #: seconds of silence mean the reply is never coming.
    timeout: float = 30.0
    #: Retries after the first attempt; exhaustion raises
    #: :class:`repro.errors.RequestTimeoutError`.
    max_retries: int = 4
    #: First retry is delayed by this much ...
    backoff_base: float = 0.01
    #: ... doubling (``backoff_factor``) per attempt, capped at
    #: ``backoff_cap`` — the classic capped exponential backoff.
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    #: Total simulated seconds a sub-request may spend retrying before
    #: the client gives up, regardless of how many attempts remain.
    #: ``None`` disables the cap (attempt-count bound only).  The cap
    #: exists because the attempt budget alone is unbounded in *time*:
    #: a slow-but-not-lost attempt restarts the per-attempt deadline, so
    #: pathological fault overlaps could stretch a "bounded" retry loop
    #: arbitrarily.  Chaos episodes (:mod:`repro.chaos`) set this to a
    #: value derived from the fault-plan horizon.
    total_timeout: Optional[float] = None

    def validate(self) -> None:
        if self.timeout <= 0:
            raise ConfigError("retry timeout must be positive")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be non-negative")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigError("backoff bounds must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if self.total_timeout is not None and self.total_timeout <= 0:
            raise ConfigError("total_timeout must be positive (or None)")

    def backoff(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (0-based), capped exponential."""
        return min(self.backoff_base * self.backoff_factor ** attempt,
                   self.backoff_cap)


@dataclass(frozen=True)
class ServerConfig:
    """Per-data-server parameters."""

    #: Per-request server software overhead (job creation, flow setup).
    request_overhead: float = 100 * US
    #: Concurrent I/O jobs a server works on (Trove threads).
    io_depth: int = 16
    #: Disks per data server (paper §II extension: each disk gets its
    #: own iBridge manager sharing the server's SSD).  File handles map
    #: to disks round-robin.
    disks_per_server: int = 1

    def validate(self) -> None:
        if self.request_overhead < 0:
            raise ConfigError("request_overhead must be non-negative")
        if self.io_depth < 1:
            raise ConfigError("io_depth must be >= 1")
        if self.disks_per_server < 1:
            raise ConfigError("disks_per_server must be >= 1")


@dataclass(frozen=True)
class ClusterConfig:
    """Top-level description of the simulated parallel I/O system."""

    num_servers: int = 8
    stripe_unit: int = 64 * KiB
    hdd: HDDConfig = field(default_factory=HDDConfig)
    ssd: SSDConfig = field(default_factory=SSDConfig)
    hdd_scheduler: SchedulerConfig = field(default_factory=lambda: SchedulerConfig(kind="cfq"))
    ssd_scheduler: SchedulerConfig = field(default_factory=lambda: SchedulerConfig(kind="noop"))
    network: NetworkConfig = field(default_factory=NetworkConfig)
    server: ServerConfig = field(default_factory=ServerConfig)
    ibridge: IBridgeConfig = field(default_factory=IBridgeConfig)
    audit: AuditConfig = field(default_factory=AuditConfig)
    retry: RetryConfig = field(default_factory=RetryConfig)
    obs: ObsConfig = field(default_factory=ObsConfig)
    #: Client-side per-request overhead (MPI-IO + PVFS2 client split).
    client_overhead: float = 50 * US
    #: Uniform per-request client think-time jitter upper bound.  Models
    #: the nondeterminism of parallel execution the paper identifies as
    #: the reason uncoordinated processes defeat in-kernel merging:
    #: ranks progressively drift out of phase, so the contiguous partner
    #: of a piece has usually been dispatched long before it arrives.
    #: Kept small relative to device service times so that tiny-request
    #: workloads (BTIO) remain storage-bound, as on the real testbed.
    client_jitter: float = 0.3 * MS
    #: Data placement: store files on SSD instead of HDD ("SSD-only"
    #: configuration of Fig. 10).  iBridge must be disabled in that case.
    primary_store: str = "hdd"
    seed: int = 20130520

    # ---- partitioned-horizon parallel execution (repro.sim.parallel) --
    #: Worker shards the cluster is partitioned over.  ``1`` (default)
    #: is the serial engine, bit-identical to every run before this knob
    #: existed.  ``> 1`` round-robins servers and client nodes across
    #: shards, one :class:`~repro.sim.core.Environment` per shard,
    #: synchronized with a conservative time-window protocol on the
    #: network boundary (see DESIGN.md §14).  Sharded runs are
    #: deterministic for a fixed ``(seed, shards)`` pair but are a
    #: *different* (coarser) network model than serial: cross-shard
    #: messages pay sender-side overhead + wire time locally and the
    #: propagation latency as the inter-shard lookahead.
    shards: int = 1
    #: Synchronization lookahead in simulated seconds.  ``None`` uses
    #: the safe value — the minimum configured link latency
    #: (``network.latency``), below which no cross-shard message can be
    #: delivered.  Larger values quantize cross-shard delivery times to
    #: window boundaries (bounded, deterministic skew) in exchange for
    #: fewer barriers; see docs/PERFORMANCE.md for the trade-off.
    shard_lookahead: Optional[float] = None
    #: "process" runs one worker process per shard (the point of the
    #: exercise); "inline" steps every shard in this process — same
    #: schedules, no parallelism — for tests and debugging.
    shard_mode: str = "process"

    def validate(self) -> None:
        if self.num_servers < 1:
            raise ConfigError("need at least one data server")
        if self.stripe_unit < 4 * KiB:
            raise ConfigError("stripe unit unreasonably small")
        if self.primary_store not in ("hdd", "ssd"):
            raise ConfigError(f"unknown primary_store {self.primary_store!r}")
        if self.primary_store == "ssd" and self.ibridge.enabled:
            raise ConfigError("iBridge requires the HDD primary store")
        if self.client_overhead < 0:
            raise ConfigError("client_overhead must be non-negative")
        if self.client_jitter < 0:
            raise ConfigError("client_jitter must be non-negative")
        if self.shards < 1:
            raise ConfigError("shards must be >= 1")
        if self.shard_mode not in ("process", "inline"):
            raise ConfigError(f"unknown shard_mode {self.shard_mode!r}")
        if self.shard_lookahead is not None and self.shard_lookahead <= 0:
            raise ConfigError("shard_lookahead must be positive (or None)")
        if self.shards > 1 and self.network.latency <= 0 \
                and self.shard_lookahead is None:
            raise ConfigError("shards > 1 needs a positive network latency "
                              "(or an explicit shard_lookahead) for the "
                              "synchronization lookahead")
        self.hdd.validate()
        self.ssd.validate()
        self.hdd_scheduler.validate()
        self.ssd_scheduler.validate()
        self.network.validate()
        self.server.validate()
        self.ibridge.validate()
        self.audit.validate()
        self.retry.validate()
        self.obs.validate()

    def with_ibridge(self, **overrides) -> "ClusterConfig":
        """Copy of this config with iBridge enabled (plus overrides)."""
        ib = dataclasses.replace(self.ibridge, enabled=True, **overrides)
        return dataclasses.replace(self, ibridge=ib)

    def with_audit(self, **overrides) -> "ClusterConfig":
        """Copy of this config with auditing enabled (plus overrides)."""
        audit = dataclasses.replace(self.audit, enabled=True, **overrides)
        return dataclasses.replace(self, audit=audit)

    def with_retry(self, **overrides) -> "ClusterConfig":
        """Copy of this config with adjusted client retry parameters."""
        retry = dataclasses.replace(self.retry, **overrides)
        return dataclasses.replace(self, retry=retry)

    def with_ftl(self, **overrides) -> "ClusterConfig":
        """Copy of this config with the SSD FTL/GC model enabled
        (plus SSDConfig overrides — watermarks, policy, capacity)."""
        ssd = dataclasses.replace(self.ssd, ftl_enabled=True, **overrides)
        return dataclasses.replace(self, ssd=ssd)

    def with_obs(self, **overrides) -> "ClusterConfig":
        """Copy of this config with observability enabled (+ overrides)."""
        obs = dataclasses.replace(self.obs, enabled=True, **overrides)
        return dataclasses.replace(self, obs=obs)

    def with_shards(self, shards: int, **overrides) -> "ClusterConfig":
        """Copy of this config partitioned over ``shards`` workers
        (plus ``shard_lookahead``/``shard_mode`` overrides)."""
        cfg = dataclasses.replace(self, shards=shards, **overrides)
        cfg.validate()
        return cfg

    def without_ibridge(self) -> "ClusterConfig":
        """Copy of this config with iBridge disabled (the stock system)."""
        ib = dataclasses.replace(self.ibridge, enabled=False)
        return dataclasses.replace(self, ibridge=ib)

    def replace(self, **overrides) -> "ClusterConfig":
        """Dataclass ``replace`` with validation."""
        cfg = dataclasses.replace(self, **overrides)
        cfg.validate()
        return cfg
