"""Workload abstraction and the run harness.

A workload knows how many ranks it needs, how to prepare files on a
cluster, and supplies the per-rank body generator.  The harness wires
it to an :class:`MPIRun`, optionally performs untimed warm runs (the
paper's read-side benefit comes from fragments cached in prior runs of
the same program), runs the measured pass, drains dirty data (the
paper's methodology charges writeback to the program), and packages a
:class:`RunResult`.
"""

from __future__ import annotations

import abc
from typing import Optional

from ..analysis.metrics import RunResult
from ..mpi.runtime import MPIRun, RankContext
from ..pfs.cluster import Cluster


class Workload(abc.ABC):
    """Base class for benchmark workload models."""

    name: str = "workload"

    @property
    @abc.abstractmethod
    def nprocs(self) -> int:
        """Number of MPI ranks."""

    @property
    @abc.abstractmethod
    def total_bytes(self) -> int:
        """Payload bytes moved by one run (for throughput accounting)."""

    @abc.abstractmethod
    def prepare(self, cluster: Cluster) -> None:
        """Create files / record handles.  Called once per cluster."""

    @abc.abstractmethod
    def body(self, ctx: RankContext):
        """The rank body generator (yield events)."""

    #: Compute nodes to spread ranks over (None = one node per rank).
    client_nodes: Optional[int] = None


def run_workload(cluster: Cluster, workload: Workload, drain: bool = True,
                 warm_runs: int = 0, reset_after_warm: bool = True) -> RunResult:
    """Run ``workload`` on ``cluster`` and collect metrics.

    ``warm_runs`` untimed passes precede the measurement; they populate
    iBridge's SSD cache exactly the way earlier executions of the same
    program would.  Statistics and tracers are reset before the timed
    pass when ``reset_after_warm`` is set.
    """
    workload.prepare(cluster)

    for _ in range(max(0, warm_runs)):
        run = MPIRun(cluster, workload.nprocs, client_nodes=workload.client_nodes)
        run.run_to_completion(workload.body)
        if drain:
            cluster.drain()

    if warm_runs and reset_after_warm:
        _reset_measurement_state(cluster)

    if cluster.obs is not None and cluster.obs.registry is not None:
        # Align the sample clock with the measured pass so warm-run
        # drift does not offset the time series.
        cluster.obs.registry.sample(cluster.env.now)

    start = cluster.env.now
    run = MPIRun(cluster, workload.nprocs, client_nodes=workload.client_nodes)
    run.run_to_completion(workload.body)
    if drain:
        cluster.drain()
    makespan = cluster.env.now - start

    stats = cluster.ibridge_stats()
    result = RunResult(
        name=workload.name,
        makespan=makespan,
        total_bytes=workload.total_bytes,
        requests=list(cluster.requests),
        ssd_fraction=stats.ssd_fraction if stats else 0.0,
    )
    if cluster.obs is not None:
        # Export spans/metrics (when paths are configured) and carry the
        # headline critical-path numbers on the result.
        cluster.obs.finish_run()
        if cluster.obs.tracer is not None:
            report = cluster.obs.analyze()
            result.extra["obs_spans"] = float(len(cluster.obs.tracer.spans))
            result.extra["obs_traces"] = float(report.count)
            result.extra["obs_mean_magnification"] = report.mean_magnification
        if cluster.obs.timeline is not None:
            result.extra["timeline_rows"] = float(
                len(cluster.obs.timeline.rows))
            # Flat last-value gauges so downstream consumers (the svc
            # worker result payload, the run report) need no timeline
            # object — just the float extras every transport carries.
            for key, stats in cluster.obs.timeline_summary().items():
                result.extra[f"timeline_last[{key}]"] = stats["last"]
    if cluster.faults is not None:
        result.fault_events = [
            {"time": r.time, "phase": r.phase, "event": r.event.to_dict(),
             "detail": dict(r.detail), "index": r.index}
            for r in cluster.faults.records]
        result.recovery = recovery_snapshot(cluster)
    return result


def recovery_snapshot(cluster: Cluster) -> dict:
    """Current recovery telemetry of a cluster as a flat dict.

    Shared by :func:`run_workload` (which attaches it to
    ``RunResult.recovery``) and the chaos episode runner (which needs
    the same counters even when a run *aborted* — e.g. retry exhaustion
    raising out of the rank bodies — and no ``RunResult`` exists).
    """
    stats = cluster.ibridge_stats()
    clients = list(cluster._clients.values())
    return {
        "timeouts": float(sum(c.timeouts for c in clients)),
        "retries": float(sum(c.retries for c in clients)),
        "request_failures": float(sum(c.failures for c in clients)),
        "exhausted_subrequests": float(sum(c.exhausted for c in clients)),
        "retry_wallclock_exceeded": float(sum(c.wallclock_exhausted
                                              for c in clients)),
        "net_dropped": float(cluster.network.stats.dropped),
        "net_fault_delay_s": cluster.network.stats.fault_delay_time,
        "server_crashes": float(sum(s.crashes for s in cluster.servers)),
        "forfeited_bytes": float(stats.forfeited_bytes if stats else 0),
        "ssd_outages": float(stats.ssd_outages if stats else 0),
    }


def _reset_measurement_state(cluster: Cluster) -> None:
    """Restore pristine machine state after warm passes; keep the cache.

    A warm pass models a *previous execution* of the program: between
    real executions only the iBridge SSD cache persists — disk head
    positions, elevator queues and OS noise sequences do not.  So the
    reset re-seeds the client jitter streams, parks the device heads,
    and rebuilds the (quiescent) schedulers, in addition to clearing
    counters.  Without this, warm runs would perturb timings of
    workloads iBridge does not even touch (e.g. fully aligned patterns)
    and bias stock-vs-iBridge comparisons.
    """
    from ..block.queue import make_scheduler
    from ..core.manager import IBridgeStats
    from ..util.rng import rng_stream

    cluster.requests.clear()
    for client in cluster._clients.values():
        client._rng = rng_stream(cluster.config.seed, f"client:{client.id}")
    for server in cluster.servers:
        if getattr(server, "is_remote", False):
            continue  # sharded build: stubs have no devices to reset
        for unit in server.disks:
            unit.hdd.reset_stats()
            unit.hdd._head = 0
            unit.queue.scheduler = make_scheduler(cluster.config.hdd_scheduler)
            unit.tracer.clear()
            if unit.ibridge is not None:
                unit.ibridge.stats = IBridgeStats()
        server.ssd.reset_stats()
        server.ssd.reset_streams()
        server.ssd_queue.scheduler = make_scheduler(cluster.config.ssd_scheduler)
