"""Workload models: the paper's benchmarks, traces, and the run harness."""

from .base import Workload, recovery_snapshot, run_workload
from .btio import BTIO, btio_io_time, btio_request_size
from .composite import CompositeWorkload
from .ior import IorMpiIo
from .mpi_io_test import MpiIoTest
from .replay import TraceReplay
from .tracefile import load_trace, save_trace
from .traces import (APP_PROFILES, TABLE1_RANDOM_THRESHOLD, TABLE1_UNIT,
                     TraceClassification, TraceRecord, classify_trace,
                     synthesize_trace)

__all__ = [
    "Workload",
    "run_workload",
    "recovery_snapshot",
    "MpiIoTest",
    "IorMpiIo",
    "BTIO",
    "btio_io_time",
    "btio_request_size",
    "CompositeWorkload",
    "TraceReplay",
    "TraceRecord",
    "TraceClassification",
    "synthesize_trace",
    "classify_trace",
    "load_trace",
    "save_trace",
    "APP_PROFILES",
    "TABLE1_UNIT",
    "TABLE1_RANDOM_THRESHOLD",
]
