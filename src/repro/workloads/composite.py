"""Composite workloads: several programs sharing the storage system.

Used by the paper's Fig. 3 (a constant-size requester plus a competing
random reader) and Fig. 12 (mpi-io-test running concurrently with
BTIO).  Ranks are partitioned between the component workloads; each
component keeps its own file(s) and it reports its own byte total so
per-component throughput can be derived afterwards.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import WorkloadError
from ..mpi.runtime import RankContext
from ..pfs.cluster import Cluster
from ..sim import Barrier
from .base import Workload


class CompositeWorkload(Workload):
    """Run several workloads concurrently on one cluster."""

    def __init__(self, parts: Sequence[Workload], name: str = "composite") -> None:
        if not parts:
            raise WorkloadError("composite needs at least one part")
        self.parts: List[Workload] = list(parts)
        self.name = name
        self._offsets: List[int] = []
        self._barriers: dict = {}
        total = 0
        for part in self.parts:
            self._offsets.append(total)
            total += part.nprocs
        self._nprocs = total

    def rank_range(self, part_index: int) -> range:
        """Global rank numbers belonging to ``parts[part_index]``."""
        base = self._offsets[part_index]
        return range(base, base + self.parts[part_index].nprocs)

    @property
    def nprocs(self) -> int:
        return self._nprocs

    @property
    def total_bytes(self) -> int:
        return sum(p.total_bytes for p in self.parts)

    def prepare(self, cluster: Cluster) -> None:
        for part in self.parts:
            part.prepare(cluster)

    def _part_of(self, rank: int) -> tuple:
        for part, base in zip(self.parts, self._offsets):
            if base <= rank < base + part.nprocs:
                return part, base
        raise WorkloadError(f"rank {rank} outside composite")

    def body(self, ctx: RankContext):
        part, base = self._part_of(ctx.rank)
        # Re-expose the context with a part-local rank and a part-local
        # barrier, so each component workload sees its own MPI world.
        barrier = self._barriers.get(id(part))
        if barrier is None:
            barrier = Barrier(ctx.env, part.nprocs)
            self._barriers[id(part)] = barrier
        local = _LocalRankContext(ctx, ctx.rank - base, part.nprocs, barrier)
        yield from part.body(local)


class _LocalRankContext:
    """RankContext view with part-local rank numbering and barrier."""

    def __init__(self, inner: RankContext, rank: int, nprocs: int,
                 barrier: Barrier) -> None:
        self._inner = inner
        self.rank = rank
        self._nprocs = nprocs
        self._barrier = barrier
        self.env = inner.env

    @property
    def nprocs(self) -> int:
        return self._nprocs

    def read_at(self, handle, offset, nbytes):
        return self._inner.read_at(handle, offset, nbytes)

    def write_at(self, handle, offset, nbytes):
        return self._inner.write_at(handle, offset, nbytes)

    def io(self, op, handle, offset, nbytes):
        return self._inner.io(op, handle, offset, nbytes)

    def barrier(self):
        return self._barrier.wait()

    def compute(self, seconds):
        return self._inner.compute(seconds)
