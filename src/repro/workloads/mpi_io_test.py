"""The ``mpi-io-test`` benchmark model (PVFS2's bundled test).

N processes iteratively access a shared file: at iteration ``k``,
process ``i`` accesses one segment of size ``s`` at file offset
``k*N*s + i*s (+ shift)`` — globally sequential coverage, interleaved
across processes.  The paper's three alignment patterns (Fig. 1) are
all expressible:

* Pattern I  — ``request_size == stripe_unit``, ``offset_shift == 0``
* Pattern II — ``request_size != stripe_unit`` (e.g. 65 KB)
* Pattern III — ``request_size == stripe_unit`` with a non-zero shift

The paper removes the barrier between iterations to expose more I/O
concurrency; ``use_barrier`` restores it (used by Fig. 3's analysis).
"""

from __future__ import annotations

from ..devices.base import Op
from ..errors import WorkloadError
from ..mpi.runtime import RankContext
from ..pfs.cluster import Cluster
from ..units import GiB, KiB
from .base import Workload


class MpiIoTest(Workload):
    """Parametric mpi-io-test."""

    def __init__(self, nprocs: int = 64, request_size: int = 64 * KiB,
                 file_size: int = 10 * GiB, op: Op = Op.READ,
                 offset_shift: int = 0, use_barrier: bool = False,
                 collective: bool = False) -> None:
        if nprocs < 1:
            raise WorkloadError("nprocs must be >= 1")
        if request_size <= 0:
            raise WorkloadError("request_size must be positive")
        if file_size < request_size * nprocs:
            raise WorkloadError("file too small for one iteration")
        self._nprocs = nprocs
        self.request_size = request_size
        self.file_size = file_size
        self.op = op
        self.offset_shift = offset_shift
        self.use_barrier = use_barrier
        #: Use ROMIO-style two-phase collective I/O instead of
        #: independent requests (the middleware alternative to iBridge).
        self.collective = collective
        self.iterations = file_size // (request_size * nprocs)
        self.handle: int | None = None
        mode = ",collective" if collective else ""
        self.name = (f"mpi-io-test[{op.value},s={request_size},"
                     f"np={nprocs},shift={offset_shift}{mode}]")

    @property
    def nprocs(self) -> int:
        return self._nprocs

    @property
    def total_bytes(self) -> int:
        return self.iterations * self._nprocs * self.request_size

    def prepare(self, cluster: Cluster) -> None:
        if self.handle is not None:
            return
        # Allocate enough backing space to cover the shifted tail.
        span = self.total_bytes + self.offset_shift + self.request_size
        self.handle = cluster.create_file(span)

    def body(self, ctx: RankContext):
        n, s = self._nprocs, self.request_size
        for k in range(self.iterations):
            offset = (k * n + ctx.rank) * s + self.offset_shift
            if self.collective:
                if self.op is Op.WRITE:
                    yield ctx.write_at_all(self.handle, offset, s)
                else:
                    yield ctx.read_at_all(self.handle, offset, s)
            else:
                yield ctx.io(self.op, self.handle, offset, s)
            if self.use_barrier:
                yield ctx.barrier()
