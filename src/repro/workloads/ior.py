"""The ``ior-mpi-io`` benchmark model (ASCI Purple suite).

The file is split into one equal chunk per process; each process scans
its own chunk sequentially with a configurable request size.  Because
every process is at the same *relative* offset at the same time, the
arrival pattern at any data server hops between N widely-separated file
regions — effectively random from the file system's perspective, which
is exactly why the paper uses it to study random access.
"""

from __future__ import annotations

from ..devices.base import Op
from ..errors import WorkloadError
from ..mpi.runtime import RankContext
from ..pfs.cluster import Cluster
from ..units import GiB, KiB
from .base import Workload


class IorMpiIo(Workload):
    """Parametric ior-mpi-io: per-process chunked sequential access."""

    def __init__(self, nprocs: int = 64, request_size: int = 64 * KiB,
                 file_size: int = 10 * GiB, op: Op = Op.READ) -> None:
        if nprocs < 1:
            raise WorkloadError("nprocs must be >= 1")
        if request_size <= 0:
            raise WorkloadError("request_size must be positive")
        chunk = file_size // nprocs
        if chunk < request_size:
            raise WorkloadError("chunk smaller than one request")
        self._nprocs = nprocs
        self.request_size = request_size
        self.file_size = file_size
        self.op = op
        self.chunk_size = chunk
        self.requests_per_rank = chunk // request_size
        self.handle: int | None = None
        self.name = f"ior-mpi-io[{op.value},s={request_size},np={nprocs}]"

    @property
    def nprocs(self) -> int:
        return self._nprocs

    @property
    def total_bytes(self) -> int:
        return self.requests_per_rank * self.request_size * self._nprocs

    def prepare(self, cluster: Cluster) -> None:
        if self.handle is None:
            self.handle = cluster.create_file(self.file_size)

    def body(self, ctx: RankContext):
        base = ctx.rank * self.chunk_size
        for j in range(self.requests_per_rank):
            offset = base + j * self.request_size
            yield ctx.io(self.op, self.handle, offset, self.request_size)
