"""The NAS BTIO benchmark model (MPI-IO "full" mode).

BTIO solves 3D Navier–Stokes with a block-tridiagonal scheme; every
``wr_interval`` steps each rank appends its portion of the solution
array.  What matters for the storage system (and all the paper uses):

* it alternates compute phases with bursts of *very small* writes;
* the per-request size shrinks as the process count grows (the paper
  quotes 2160 B at 9 processes down to 640 B at 100 — consistent with
  a ``~ 1/sqrt(nprocs)`` cell-partition scaling, which we adopt);
* writes from different ranks interleave in the file, so a server sees
  small scattered requests — regular random requests in iBridge terms;
* at the end the solution is read back once for verification.

Class C generates 6.8 GB over 40 output steps; ``scale`` shrinks the
dataset (not the request size!) so simulations stay tractable.
"""

from __future__ import annotations

import math

from ..errors import WorkloadError
from ..mpi.runtime import RankContext
from ..pfs.cluster import Cluster
from ..units import GiB
from .base import Workload

#: Request-size scaling constant: 6480 / sqrt(9) = 2160 B (paper, 9
#: procs); 6480 / sqrt(100) = 648 B ≈ the paper's 640 B at 100 procs.
_SIZE_CONSTANT = 6480.0

#: Class C dataset size from the paper.
CLASS_C_BYTES = int(6.8 * GiB)

#: Output steps in BTIO (class-independent).
OUTPUT_STEPS = 40


def btio_request_size(nprocs: int) -> int:
    """Per-request write size for a given square process grid size."""
    return max(64, int(round(_SIZE_CONSTANT / math.sqrt(nprocs))))


class BTIO(Workload):
    """Parametric BTIO model."""

    def __init__(self, nprocs: int = 64, total_bytes: int = CLASS_C_BYTES,
                 steps: int = OUTPUT_STEPS, compute_per_step: float = 2.0,
                 scale: float = 1.0, verify_read: bool = False) -> None:
        if nprocs < 1:
            raise WorkloadError("nprocs must be >= 1")
        if not 0 < scale <= 1.0:
            raise WorkloadError("scale must be in (0, 1]")
        self._nprocs = nprocs
        self.steps = steps
        self.compute_per_step = compute_per_step
        self.request_size = btio_request_size(nprocs)
        data = int(total_bytes * scale)
        per_step_per_rank = max(self.request_size,
                                data // (steps * nprocs))
        self.requests_per_step = max(1, per_step_per_rank // self.request_size)
        self.verify_read = verify_read
        self.handle: int | None = None
        self.name = f"btio[np={nprocs}]"

    @property
    def nprocs(self) -> int:
        return self._nprocs

    @property
    def step_bytes(self) -> int:
        """Bytes appended by the whole job in one output step."""
        return self.requests_per_step * self.request_size * self._nprocs

    @property
    def total_bytes(self) -> int:
        data = self.steps * self.step_bytes
        if self.verify_read:
            data *= 2
        return data

    @property
    def io_bytes_written(self) -> int:
        return self.steps * self.step_bytes

    def prepare(self, cluster: Cluster) -> None:
        if self.handle is None:
            # Preallocate the solution file: ext2 allocates blocks by
            # file-offset locality, so offset→LBN must stay linear even
            # though BTIO's writes *arrive* in scattered order.  (A lazy
            # arrival-order allocator would accidentally behave like a
            # log-structured FS and hide the random-write cost.)
            self.handle = cluster.create_file(self.io_bytes_written)

    @property
    def _requests_per_step_total(self) -> int:
        return self.requests_per_step * self._nprocs

    def _permute(self, index: int) -> int:
        """Scatter write order within a step (multiplicative permutation).

        BT decomposes the 3D array into diagonally-shifted sub-blocks, so
        successive writes of one rank land at widely separated file
        offsets — "random and very small I/O requests" (paper §III-D).
        A multiplicative permutation with a generator coprime to the
        request count reproduces that scatter while keeping per-step
        coverage exact (needed for the verification read).
        """
        total = self._requests_per_step_total
        g = max(1, int(total * 0.618)) | 1
        while math.gcd(g, total) != 1:
            g += 2
        return (index * g) % total

    def _offset(self, step: int, rank: int, j: int) -> int:
        step_base = step * self.step_bytes
        idx = self._permute(j * self._nprocs + rank)
        return step_base + idx * self.request_size

    def body(self, ctx: RankContext):
        for step in range(self.steps):
            yield ctx.compute(self.compute_per_step)
            for j in range(self.requests_per_step):
                offset = self._offset(step, ctx.rank, j)
                yield ctx.write_at(self.handle, offset, self.request_size)
            yield ctx.barrier()
        if self.verify_read:
            for step in range(self.steps):
                for j in range(self.requests_per_step):
                    offset = self._offset(step, ctx.rank, j)
                    yield ctx.read_at(self.handle, offset, self.request_size)


def btio_io_time(result, compute_time: float) -> float:
    """I/O time = makespan − modelled compute time (BTIO's own metric)."""
    return max(0.0, result.makespan - compute_time)
