"""Trace file I/O: load and save replayable traces.

The Sandia traces the paper replays are simple (operation, offset,
size) records.  This module reads and writes that format as CSV so
users can replay their own application traces through the simulator,
and ships the synthesized ALEGRA/CTH/S3D traces in the same format.

Format: one record per line, ``op,offset,nbytes`` with ``op`` in
{read, write}; lines starting with ``#`` are comments.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, List, Union

from ..devices.base import Op
from ..errors import WorkloadError
from .traces import TraceRecord

PathLike = Union[str, Path]


def dumps_trace(records: Iterable[TraceRecord]) -> str:
    """Serialize records to the CSV trace format."""
    buf = io.StringIO()
    buf.write("# op,offset,nbytes\n")
    writer = csv.writer(buf)
    for rec in records:
        writer.writerow([rec.op.value, rec.offset, rec.nbytes])
    return buf.getvalue()


def loads_trace(text: str) -> List[TraceRecord]:
    """Parse the CSV trace format into records."""
    records: List[TraceRecord] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = [p.strip() for p in line.split(",")]
        if len(parts) != 3:
            raise WorkloadError(
                f"trace line {lineno}: expected 'op,offset,nbytes', "
                f"got {line!r}")
        op_s, offset_s, nbytes_s = parts
        try:
            op = Op(op_s.lower())
        except ValueError:
            raise WorkloadError(
                f"trace line {lineno}: unknown op {op_s!r}") from None
        try:
            offset, nbytes = int(offset_s), int(nbytes_s)
        except ValueError:
            raise WorkloadError(
                f"trace line {lineno}: non-integer offset/size") from None
        if offset < 0 or nbytes <= 0:
            raise WorkloadError(
                f"trace line {lineno}: invalid geometry "
                f"offset={offset} nbytes={nbytes}")
        records.append(TraceRecord(op=op, offset=offset, nbytes=nbytes))
    if not records:
        raise WorkloadError("trace contains no records")
    return records


def save_trace(records: Iterable[TraceRecord], path: PathLike) -> None:
    """Write records to ``path`` in the CSV trace format."""
    Path(path).write_text(dumps_trace(records))


def load_trace(path: PathLike) -> List[TraceRecord]:
    """Read a trace file written by :func:`save_trace` (or by hand)."""
    p = Path(path)
    if not p.exists():
        raise WorkloadError(f"trace file not found: {p}")
    return loads_trace(p.read_text())
