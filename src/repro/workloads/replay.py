"""Trace replay (paper Section III-E).

The paper replays the Sandia traces "with a single process using the
MPI-IO library", restricting data to 10 GB, and reports the average
request service time with and without iBridge (Table III).  The replay
workload plays each record synchronously in order from rank 0.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import WorkloadError
from ..mpi.runtime import RankContext
from ..pfs.cluster import Cluster
from ..units import GiB
from .base import Workload
from .traces import TraceRecord


class TraceReplay(Workload):
    """Single-process synchronous trace replay."""

    def __init__(self, records: List[TraceRecord], span: int = 10 * GiB,
                 name: str = "trace-replay") -> None:
        if not records:
            raise WorkloadError("cannot replay an empty trace")
        self.records = records
        self.span = span
        self.name = name
        self.handle: Optional[int] = None

    @property
    def nprocs(self) -> int:
        return 1

    @property
    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self.records)

    def prepare(self, cluster: Cluster) -> None:
        if self.handle is None:
            self.handle = cluster.create_file(self.span)

    def body(self, ctx: RankContext):
        span = self.span
        for rec in self.records:
            offset = rec.offset % span
            if offset + rec.nbytes > span:
                offset = span - rec.nbytes
            yield ctx.io(rec.op, self.handle, offset, rec.nbytes)
