"""Synthetic scientific-application I/O traces and the Table I classifier.

The paper analyses Sandia Scalable-I/O traces of ALEGRA, CTH and S3D.
Those traces are not redistributable, so we synthesize traces whose
*request-class mix* matches Table I (percentage of unaligned and random
requests under a 64 KB striping unit) and whose size scales match the
paper's observations (S3D requests are much larger — its mean service
time is about twice the others').  An independent classifier recomputes
the Table I columns from any trace, so the generator is verified rather
than trusted.

Trace records carry (op, offset, size); like the Sandia traces, they do
not carry issuing process ids, and the paper replays them with a single
process (Section III-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..devices.base import Op
from ..errors import WorkloadError
from ..units import GiB, KiB
from ..util.rng import rng_stream

#: Striping unit Table I assumes.
TABLE1_UNIT = 64 * KiB
#: "Requests smaller than 20KB are categorized as random."
TABLE1_RANDOM_THRESHOLD = 20 * KiB


@dataclass(frozen=True)
class TraceRecord:
    """One replayable request."""

    op: Op
    offset: int
    nbytes: int


@dataclass(frozen=True)
class AppProfile:
    """Generator parameters for one application's trace."""

    name: str
    unaligned_pct: float       # Table I target
    random_pct: float          # Table I target
    #: (low, high) size range of large (aligned/unaligned) requests,
    #: in striping units.
    large_units: Tuple[int, int]
    #: (low, high) size range of random requests, bytes.
    random_bytes: Tuple[int, int]
    write_fraction: float = 0.6


#: Profiles tuned to Table I; S3D's larger requests give it roughly
#: twice the mean service time of the others, as in Table III.
APP_PROFILES: Dict[str, AppProfile] = {
    "ALEGRA-2744": AppProfile("ALEGRA-2744", 35.2, 7.3, (1, 4), (1 * KiB, 19 * KiB)),
    "ALEGRA-5832": AppProfile("ALEGRA-5832", 35.7, 6.9, (1, 4), (1 * KiB, 19 * KiB)),
    "CTH": AppProfile("CTH", 24.3, 30.1, (1, 4), (512, 19 * KiB)),
    "S3D": AppProfile("S3D", 62.8, 5.8, (16, 64), (2 * KiB, 19 * KiB)),
}


def synthesize_trace(app: str, requests: int = 2000, span: int = 10 * GiB,
                     seed: int = 20130520) -> List[TraceRecord]:
    """Generate a trace for ``app`` matching its Table I class mix.

    The trace walks the file mostly sequentially (scientific outputs are
    checkpoint-like sweeps) with random requests scattered across the
    span; unaligned large requests carry a small sub-unit displacement
    (the paper's HDF5-header example).
    """
    profile = APP_PROFILES.get(app)
    if profile is None:
        raise WorkloadError(f"unknown app {app!r}; know {sorted(APP_PROFILES)}")
    rng = rng_stream(seed, f"trace:{app}")
    unit = TABLE1_UNIT
    records: List[TraceRecord] = []
    cursor = 0
    p_unaligned = profile.unaligned_pct / 100.0
    p_random = profile.random_pct / 100.0
    for _ in range(requests):
        op = Op.WRITE if rng.random() < profile.write_fraction else Op.READ
        roll = rng.random()
        if roll < p_unaligned:
            units = int(rng.integers(profile.large_units[0],
                                     profile.large_units[1] + 1))
            size = units * unit + int(rng.integers(1, unit))  # > unit, not multiple
            shift = int(rng.integers(1, unit))                # off-boundary start
            offset = cursor + shift
            cursor += size + shift
        elif roll < p_unaligned + p_random:
            size = int(rng.integers(profile.random_bytes[0],
                                    profile.random_bytes[1] + 1))
            offset = int(rng.integers(0, max(1, span - size)))
        else:
            units = int(rng.integers(profile.large_units[0],
                                     profile.large_units[1] + 1))
            size = units * unit
            offset = (cursor // unit) * unit  # aligned
            cursor = offset + size
        if cursor >= span - 32 * unit:
            cursor = 0
        offset = min(offset, span - size)
        records.append(TraceRecord(op=op, offset=offset, nbytes=size))
    return records


@dataclass(frozen=True)
class TraceClassification:
    """Table I's columns for one trace."""

    unaligned_pct: float
    random_pct: float

    @property
    def total_pct(self) -> float:
        return self.unaligned_pct + self.random_pct


def classify_trace(records: List[TraceRecord], unit: int = TABLE1_UNIT,
                   random_threshold: int = TABLE1_RANDOM_THRESHOLD,
                   ) -> TraceClassification:
    """Recompute Table I's percentages for a trace.

    Unaligned: larger than one striping unit but not aligned to striping
    boundaries (start offset or size off-boundary).  Random: smaller
    than the threshold.
    """
    if not records:
        raise WorkloadError("empty trace")
    unaligned = random = 0
    for rec in records:
        if rec.nbytes < random_threshold:
            random += 1
        elif rec.nbytes > unit and (rec.offset % unit or rec.nbytes % unit):
            unaligned += 1
    n = len(records)
    return TraceClassification(unaligned_pct=100.0 * unaligned / n,
                               random_pct=100.0 * random / n)
