"""repro — a reproduction of *iBridge: Improving Unaligned Parallel File
Access with Solid-State Drives* (Zhang, Liu, Davis, Jiang — IPDPS 2013).

The package simulates a PVFS2-like striped parallel file system with
per-server disk+SSD hybrid storage and implements the paper's iBridge
scheme: client-side fragment identification plus server-side
cost/benefit-driven SSD redirection with dynamic space partitioning.

Quick start::

    from repro import ClusterConfig, Cluster, MpiIoTest, run_workload
    from repro.units import KiB, MiB

    config = ClusterConfig(num_servers=8).with_ibridge()
    cluster = Cluster(config)
    wl = MpiIoTest(nprocs=16, request_size=65 * KiB, file_size=64 * MiB)
    result = run_workload(cluster, wl)
    print(result.throughput_mib_s)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from .analysis import LatencyStats, RunResult, improvement, reduction
from .audit import AuditRuntime
from .config import (AuditConfig, ClusterConfig, HDDConfig, IBridgeConfig,
                     NetworkConfig, ReturnPolicy, SchedulerConfig,
                     ServerConfig, SSDConfig)
from .devices.base import Op
from .pfs import Cluster, StripeLayout
from .workloads import (BTIO, IorMpiIo, MpiIoTest, TraceReplay, Workload,
                        classify_trace, run_workload, synthesize_trace)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "ClusterConfig",
    "HDDConfig",
    "SSDConfig",
    "SchedulerConfig",
    "NetworkConfig",
    "ServerConfig",
    "IBridgeConfig",
    "ReturnPolicy",
    "AuditConfig",
    # auditing
    "AuditRuntime",
    # system
    "Cluster",
    "StripeLayout",
    "Op",
    # workloads
    "Workload",
    "run_workload",
    "MpiIoTest",
    "IorMpiIo",
    "BTIO",
    "TraceReplay",
    "synthesize_trace",
    "classify_trace",
    # analysis
    "RunResult",
    "LatencyStats",
    "improvement",
    "reduction",
]
