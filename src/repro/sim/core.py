"""The discrete-event simulation environment.

Deterministic by construction: ties in the event heap are broken by a
monotone sequence number, so two runs with the same seed produce
identical schedules.  This is essential for reproducible experiments
and for hypothesis-based property tests.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, List, Optional, Tuple

from ..errors import SimulationError
from .events import PRIORITY_NORMAL, PRIORITY_URGENT, AllOf, AnyOf, Event, Timeout

ProcessGenerator = Generator[Event, Any, Any]


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """Wraps a generator; the process event fires when the generator ends.

    The generator yields :class:`Event` instances.  When a yielded event
    succeeds its value is sent back into the generator; when it fails,
    the exception is thrown into the generator (which may catch it).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: Optional[str] = None) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume on the next scheduler pass at the current time.
        init = Event(env)
        init._ok = True
        init._triggered = True
        init.callbacks.append(self._resume)
        env._schedule(init, PRIORITY_URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        wakeup = Event(self.env)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        wakeup._defused = True
        wakeup._triggered = True
        wakeup.callbacks.append(self._resume)
        self.env._schedule(wakeup, PRIORITY_URGENT)

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        self._target = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                event.defuse()
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None

        if not isinstance(target, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded a non-event: {target!r}")
            try:
                self._generator.throw(exc)
            except StopIteration as stop:
                self.succeed(stop.value)
            except BaseException as err:
                self.fail(err)
            return
        if target.env is not self.env:
            self.fail(SimulationError("yielded event belongs to another environment"))
            return
        self._target = target
        target.add_callback(self._resume)


class Environment:
    """Event loop with a simulated clock.

    Usage::

        env = Environment()
        def proc(env):
            yield env.timeout(1.0)
        env.process(proc(env))
        env.run()
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    # -- clock -------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing once all ``events`` fire."""
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing once any of ``events`` fires."""
        return AnyOf(self, list(events))

    # -- scheduling --------------------------------------------------
    def _schedule(self, event: Event, priority: int = PRIORITY_NORMAL,
                  delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def queue_snapshot(self, limit: Optional[int] = None) -> List[Tuple[float, int, int, str]]:
        """The pending event queue as ``(time, priority, seq, label)``.

        Diagnostic view (used by the audit watchdog's stall dumps):
        events are labelled with their process name when they belong to
        a process, else their class name.  Sorted by firing order.
        """
        items = sorted(self._queue)
        if limit is not None:
            items = items[:limit]
        out = []
        for when, prio, seq, event in items:
            label = getattr(event, "name", None) or type(event).__name__
            out.append((when, prio, seq, label))
        return out

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # Nobody handled the failure: surface it to the caller of run().
            exc = event._value
            raise exc

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to exhaustion), a time (run until
        the clock reaches it), or an :class:`Event` (run until it fires,
        returning its value).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until={stop_time} is in the past (now={self._now})")

        while self._queue:
            if stop_event is not None and stop_event._processed:
                break
            if self.peek() > stop_time:
                self._now = stop_time
                return None
            self.step()

        if stop_event is not None:
            if not stop_event._processed:
                raise SimulationError("run() ran out of events before `until` fired")
            if not stop_event._ok:
                raise stop_event._value  # type: ignore[misc]
            return stop_event._value
        if until is not None and stop_time != float("inf"):
            self._now = stop_time
        return None
