"""The discrete-event simulation environment.

Deterministic by construction: ties in the event heap are broken by a
monotone sequence number, so two runs with the same seed produce
identical schedules.  This is essential for reproducible experiments
and for hypothesis-based property tests.

Hot-path notes (see docs/PERFORMANCE.md): :meth:`Environment.run`
inlines the dispatch loop (``step()`` remains for single-stepping), the
:class:`Process` bootstrap builds a bare pre-triggered event without
the ``Event.__init__`` trampoline, and resumes go through cached bound
``send``/``throw`` methods.  Every fast path preserves the heap-entry
layout and seq consumption exactly, so schedules are bit-identical to
the straightforward implementation — the determinism regression tests
in ``tests/test_sim_core.py`` pin this.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Any, Generator, Iterable, List, Optional, Tuple

from ..errors import SimulationError
from .events import PRIORITY_NORMAL, PRIORITY_URGENT, AllOf, AnyOf, Event, Timeout

ProcessGenerator = Generator[Event, Any, Any]


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """Wraps a generator; the process event fires when the generator ends.

    The generator yields :class:`Event` instances.  When a yielded event
    succeeds its value is sent back into the generator; when it fails,
    the exception is thrown into the generator (which may catch it).
    """

    __slots__ = ("_generator", "_send", "_resume_cb", "_target", "name")

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: Optional[str] = None) -> None:
        # The bound ``send`` is cached: it is called once per resume, so
        # for long-lived processes the one-time allocation replaces a
        # per-resume method lookup.  ``throw`` is NOT cached — it only
        # runs on failure paths, and an extra live bound method per
        # process is measurable GC weight in spawn-heavy workloads.
        try:
            self._send = generator.send
        except AttributeError:
            raise SimulationError(f"{generator!r} is not a generator") from None
        self.env = env
        self.callbacks = []
        self._value = None
        self._ok = True
        self._triggered = False
        self._processed = False
        self._defused = False
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume on the next scheduler pass at the current
        # time.  The init event is a bare slot-filled Event — it exists
        # only to carry one callback through the heap once, so skipping
        # the constructor saves a call frame per spawned process.  A
        # pool was considered and rejected: resetting a pooled event
        # costs the same writes as building a fresh one, and eager
        # (push-free) starts would reorder schedules.
        # ``self._resume`` builds a fresh bound method on every access;
        # waiting on an event appends it to the event's callback list,
        # so without this cache every yield allocates one.
        self._resume_cb = resume = self._resume
        init = Event.__new__(Event)
        init.env = env
        init.callbacks = [resume]
        init._value = None
        init._ok = True
        init._triggered = True
        init._processed = False
        init._defused = False
        env._seq = seq = env._seq + 1
        heappush(env._queue, (env._now, PRIORITY_URGENT, seq, init))

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        wakeup = Event.__new__(Event)
        wakeup.env = self.env
        wakeup.callbacks = [self._resume_cb]
        wakeup._value = Interrupt(cause)
        wakeup._ok = False
        wakeup._triggered = True
        wakeup._processed = False
        wakeup._defused = True
        env = self.env
        env._seq = seq = env._seq + 1
        heappush(env._queue, (env._now, PRIORITY_URGENT, seq, wakeup))

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        self._target = None
        try:
            if event._ok:
                target = self._send(event._value)
            else:
                event._defused = True
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            env._active_process = None
            self.fail(exc)
            return
        env._active_process = None

        if isinstance(target, Event):
            if target.env is not env:
                self.fail(SimulationError("yielded event belongs to another environment"))
                return
            self._target = target
            callbacks = target.callbacks
            if callbacks is None:
                # Already processed: resume again on the spot (matches
                # Event.add_callback semantics without the call).
                self._resume(target)
            else:
                callbacks.append(self._resume_cb)
            return

        exc = SimulationError(
            f"process {self.name!r} yielded a non-event: {target!r}")
        try:
            self._generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
        except BaseException as err:
            self.fail(err)


class Environment:
    """Event loop with a simulated clock.

    Usage::

        env = Environment()
        def proc(env):
            yield env.timeout(1.0)
        env.process(proc(env))
        env.run()
    """

    __slots__ = ("_now", "_queue", "_seq", "_active_process")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    # -- clock -------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` simulated seconds from now.

        Construction is inlined (mirroring ``Timeout.__init__`` slot for
        slot): this factory is the single most-called allocation site in
        the package, and skipping the constructor frame is a measurable
        share of events/sec.
        """
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        ev = Timeout.__new__(Timeout)
        ev.env = self
        ev.callbacks = []
        ev._value = value
        ev._ok = True
        ev._triggered = True
        ev._processed = False
        ev._defused = False
        ev.delay = delay
        self._seq = seq = self._seq + 1
        heappush(self._queue, (self._now + delay, PRIORITY_NORMAL, seq, ev))
        return ev

    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing once all ``events`` fire."""
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing once any of ``events`` fires."""
        return AnyOf(self, list(events))

    # -- scheduling --------------------------------------------------
    def _schedule(self, event: Event, priority: int = PRIORITY_NORMAL,
                  delay: float = 0.0) -> None:
        self._seq = seq = self._seq + 1
        heappush(self._queue, (self._now + delay, priority, seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def queue_snapshot(self, limit: Optional[int] = None) -> List[Tuple[float, int, int, str]]:
        """The pending event queue as ``(time, priority, seq, label)``.

        Diagnostic view (used by the audit watchdog's stall dumps):
        events are labelled with their process name when they belong to
        a process, else their class name.  Sorted by firing order.  With
        ``limit`` only the first ``limit`` entries are extracted — via
        ``heapq.nsmallest``, so a stall dump on a deep queue costs
        O(n log limit) rather than sorting the whole pending set.
        """
        if limit is not None:
            items = heapq.nsmallest(limit, self._queue)
        else:
            items = sorted(self._queue)
        out = []
        for when, prio, seq, event in items:
            label = getattr(event, "name", None) or type(event).__name__
            out.append((when, prio, seq, label))
        return out

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _prio, _seq, event = heappop(self._queue)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # Nobody handled the failure: surface it to the caller of run().
            exc = event._value
            raise exc

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to exhaustion), a time (run until
        the clock reaches it), or an :class:`Event` (run until it fires,
        returning its value).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until={stop_time} is in the past (now={self._now})")

        # The dispatch loop is the single hottest code in the package;
        # it is inlined here (rather than calling step()) with the queue
        # and heappop bound to locals.  Semantics match step() exactly.
        queue = self._queue
        pop = heappop
        if stop_event is None and stop_time == float("inf"):
            # Run-to-exhaustion fast path: no stop checks per event.
            while queue:
                when, _prio, _seq, event = pop(queue)
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            return None

        while queue:
            if stop_event is not None and stop_event._processed:
                break
            if queue[0][0] > stop_time:
                self._now = stop_time
                return None
            when, _prio, _seq, event = pop(queue)
            self._now = when
            callbacks = event.callbacks
            event.callbacks = None
            event._processed = True
            if len(callbacks) == 1:
                callbacks[0](event)
            else:
                for callback in callbacks:
                    callback(event)
            if not event._ok and not event._defused:
                raise event._value

        if stop_event is not None:
            if not stop_event._processed:
                raise SimulationError("run() ran out of events before `until` fired")
            if not stop_event._ok:
                raise stop_event._value  # type: ignore[misc]
            return stop_event._value
        if until is not None and stop_time != float("inf"):
            self._now = stop_time
        return None
