"""Event primitives for the discrete-event engine.

The engine follows the classic coroutine style: a *process* is a Python
generator that yields :class:`Event` objects; the environment resumes
the generator when the yielded event fires.  Events are single-shot —
they succeed or fail exactly once, and callbacks attached afterwards
fire immediately on the next scheduler pass.

Hot-path notes (see docs/PERFORMANCE.md): ``succeed``, ``fail`` and
``Timeout.__init__`` push onto the environment's heap directly instead
of going through ``Environment._schedule`` — one Python call frame per
event is real money when a run processes tens of millions of events.
The heap entry layout ``(time, priority, seq, event)`` and the
monotone-``seq`` tie-break are part of the engine's determinism
contract; every inlined push must reproduce it exactly.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, List, Optional, TYPE_CHECKING

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .core import Environment

Callback = Callable[["Event"], None]

#: Scheduling priorities.  URGENT is used for interrupt-style wakeups,
#: NORMAL for ordinary event processing.  Lower sorts first.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class Event:
    """A one-shot occurrence with a value and attached callbacks.

    An event moves through three states: *pending* (created),
    *triggered* (scheduled with a value, waiting in the event heap) and
    *processed* (callbacks have run).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callback]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._defused = False

    # -- state -------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, if it failed)."""
        if not self._triggered:
            raise SimulationError("value accessed before event was triggered")
        return self._value

    # -- triggering --------------------------------------------------
    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Schedule this event to fire successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        env = self.env
        env._seq = seq = env._seq + 1
        heappush(env._queue, (env._now, priority, seq, self))
        return self

    def fail(self, exception: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Schedule this event to fire by raising ``exception`` in waiters."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._triggered = True
        env = self.env
        env._seq = seq = env._seq + 1
        heappush(env._queue, (env._now, priority, seq, self))
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the engine does not re-raise."""
        self._defused = True

    def add_callback(self, callback: Callback) -> None:
        """Attach ``callback``; runs immediately if already processed."""
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    Timeouts are the single most-allocated event type (every poll loop,
    idle window and service charge makes one), so construction writes
    the slots directly rather than chaining through ``Event.__init__``.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self._defused = False
        self.delay = delay
        env._seq = seq = env._seq + 1
        heappush(env._queue, (env._now + delay, PRIORITY_NORMAL, seq, self))


class Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_pending_count")

    def __init__(self, env: "Environment", events: List[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._pending_count = 0
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("cannot mix events from different environments")
        if not self.events:
            self.succeed(self._collect())
            return
        check = self._check  # one bound method for all members
        for ev in self.events:
            if ev.callbacks is None:  # already processed
                check(ev)
            else:
                ev.callbacks.append(check)

    def _collect(self) -> dict:
        return {ev: ev._value for ev in self.events if ev._processed and ev._ok}

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _on_failure(self, event: Event) -> None:
        event._defused = True
        if not self._triggered:
            self.fail(event._value)


class AllOf(Condition):
    """Fires when every component event has fired (fails fast on failure)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            # A member failing after the condition resolved (e.g. two
            # sub-request retries exhausting at the same instant) is
            # already accounted for by the condition's own failure —
            # defuse it so it cannot surface as an unhandled event.
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            self._on_failure(event)
            return
        self._pending_count += 1
        if self._pending_count == len(self.events):
            self.succeed({ev: ev._value for ev in self.events})


class AnyOf(Condition):
    """Fires as soon as any component event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            # A loser of the race that *fails* later (a timed-out retry
            # attempt, a drained member) was raced on purpose; absorb it.
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            self._on_failure(event)
            return
        self.succeed({event: event._value})
