"""Deterministic discrete-event simulation engine.

A minimal SimPy-flavoured kernel: generator-based processes, a binary
heap of timestamped events with deterministic tie-breaking, counted
resources, stores, and barriers.  Everything else in the reproduction
(devices, schedulers, servers, MPI ranks) is built as processes on top
of this engine.
"""

from .core import Environment, Interrupt, Process
from .events import AllOf, AnyOf, Event, Timeout
from .resources import PriorityStore, Request, Resource, Store
from .sync import Barrier, CountdownLatch

__all__ = [
    "Environment",
    "Process",
    "Interrupt",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Resource",
    "Request",
    "Store",
    "PriorityStore",
    "Barrier",
    "CountdownLatch",
]
