"""Shared-resource primitives built on the event engine.

``Resource`` models a server with limited concurrency (e.g. a NIC or a
device command slot); ``Store`` is an unbounded producer/consumer queue
(used for server job queues); ``PriorityStore`` pops the smallest item.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, Generator, List

from ..errors import SimulationError
from .core import Environment
from .events import Event


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, env: Environment, resource: "Resource") -> None:
        super().__init__(env)
        self.resource = resource

    # Context-manager sugar: ``with res.request() as req: yield req``
    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)


class Resource:
    """A counted resource with FIFO waiters."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: List[Request] = []
        self._waiters: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Request:
        """Ask for a slot; the returned event fires when granted."""
        req = Request(self.env, self)
        if len(self._users) < self.capacity:
            self._users.append(req)
            req.succeed()
        else:
            self._waiters.append(req)
        return req

    def release(self, req: Request) -> None:
        """Return a slot previously granted to ``req``."""
        try:
            self._users.remove(req)
        except ValueError:
            # Releasing an un-granted (still waiting) request cancels it.
            try:
                self._waiters.remove(req)
            except ValueError:
                raise SimulationError("release() of a request not held or queued")
            return
        if self._waiters:
            nxt = self._waiters.popleft()
            self._users.append(nxt)
            nxt.succeed()

    def acquire(self) -> Generator[Event, Any, Request]:
        """Process-style helper: ``req = yield from res.acquire()``."""
        req = self.request()
        yield req
        return req


class StoreGet(Event):
    __slots__ = ()


class Store:
    """Unbounded FIFO queue of items with blocking ``get``."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (for inspection/testing)."""
        return tuple(self._items)

    def put(self, item: Any) -> None:
        """Add ``item``; wakes one waiting getter immediately."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> StoreGet:
        """Event firing with the next item (immediately if available)."""
        ev = StoreGet(self.env)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev


class PriorityStore(Store):
    """A store that always yields the smallest item (heap ordered).

    Items must be comparable; use tuples ``(priority, seq, payload)``.
    """

    def __init__(self, env: Environment) -> None:
        super().__init__(env)
        self._heap: List[Any] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def items(self) -> tuple:
        return tuple(sorted(self._heap))

    def put(self, item: Any) -> None:
        if self._getters:
            # A getter is waiting; give it the item only if it is the
            # minimum of (heap + item); otherwise push and pop-min.
            heapq.heappush(self._heap, item)
            self._getters.popleft().succeed(heapq.heappop(self._heap))
        else:
            heapq.heappush(self._heap, item)

    def get(self) -> StoreGet:
        ev = StoreGet(self.env)
        if self._heap:
            ev.succeed(heapq.heappop(self._heap))
        else:
            self._getters.append(ev)
        return ev
