"""Synchronization helpers: barriers and latches for simulated MPI ranks."""

from __future__ import annotations

from typing import List

from ..errors import SimulationError
from .core import Environment
from .events import Event


class Barrier:
    """A reusable cyclic barrier for a fixed number of parties.

    Each party calls :meth:`wait` and yields the returned event; the
    event for every waiting party fires when the last one arrives.
    """

    def __init__(self, env: Environment, parties: int) -> None:
        if parties < 1:
            raise SimulationError(f"barrier needs >= 1 party, got {parties}")
        self.env = env
        self.parties = parties
        self._waiting: List[Event] = []
        self._generation = 0

    @property
    def waiting(self) -> int:
        """Number of parties currently blocked at the barrier."""
        return len(self._waiting)

    @property
    def generation(self) -> int:
        """Number of times the barrier has tripped."""
        return self._generation

    def wait(self) -> Event:
        """Arrive at the barrier; the event fires when all have arrived."""
        ev = Event(self.env)
        self._waiting.append(ev)
        if len(self._waiting) == self.parties:
            batch, self._waiting = self._waiting, []
            self._generation += 1
            gen = self._generation
            for waiter in batch:
                waiter.succeed(gen)
        return ev


class CountdownLatch:
    """Fires its :attr:`done` event after ``count`` calls to :meth:`arrive`."""

    def __init__(self, env: Environment, count: int) -> None:
        if count < 0:
            raise SimulationError(f"latch count must be >= 0, got {count}")
        self.env = env
        self._remaining = count
        self.done = Event(env)
        if count == 0:
            self.done.succeed(0)

    @property
    def remaining(self) -> int:
        return self._remaining

    def arrive(self, value: object = None) -> None:
        if self._remaining <= 0:
            raise SimulationError("arrive() on an exhausted latch")
        self._remaining -= 1
        if self._remaining == 0:
            self.done.succeed(value)
