"""Partitioned-horizon parallel DES: shard one cluster across workers.

One big simulated cluster is partitioned round-robin into ``shards``
pieces — server ``i`` lives on shard ``i % nshards``, client node ``c``
on shard ``c % nshards`` — and each shard runs its own
:class:`~repro.sim.core.Environment` (its own event heap, clock, RNG
streams and telemetry).  The shards advance in lock-step through
*conservative time windows* (Chandy–Misra style, window-barrier
variant):

1. every shard reports the time of its next pending event;
2. the coordinator sets the window end ``T = min(next events, pending
   cross-shard arrivals) + L`` where the lookahead ``L`` is the
   cross-shard message latency (``ClusterConfig.shard_lookahead``,
   default ``network.latency``);
3. each shard runs ``env.run(until=T)`` and collects the cross-shard
   messages that *departed* during the window into an outbox;
4. the coordinator routes the outboxes and delivers each record to its
   destination shard at ``arrival = departure + L``.

Safety: the earliest event any shard processes inside a window is at
``T - L`` (step 2), so every cross-shard departure ``d`` satisfies
``d >= T - L`` and its arrival ``d + L >= T`` — never in the receiver's
past.  Progress: ``L > 0`` makes each window strictly advance the
clock, and idle shards jump straight to the cluster-wide next event
(windows are *not* fixed-width).  See DESIGN.md §14 for the proof and
the fidelity deviations of the sharded network boundary.

Cross-shard traffic is exactly the client↔server RPC of
:mod:`repro.pfs`: a client whose target server lives elsewhere talks to
a :class:`~repro.pfs.remote.RemoteServerStub`, which plays the sender
leg of the request message locally and posts a pickled, span-stripped
:class:`~repro.pfs.messages.SubRequest` to the shard outbox; the owning
shard replays arrival → ``server.submit`` → service → reply leg and
posts a reply record that completes the client's (shared, late-reply
safe) attempt event.

Fault plans partition with the cluster: each shard's injector drives
the plan events targeting its own servers, while network windows and
fleet-wide storms install on every shard (a cross-shard round trip
plays its request leg on the client's shard and its reply leg on the
server's, so a net window must exist on both to be honored).  Drop-RNG
substreams are keyed by plan name + *plan* event index — never by the
partition — and the coordinator merges transition logs, recovery
counters and restoration checks (:func:`merge_fault_records`,
:func:`merge_recovery`, :func:`run_sharded_episode`).

Determinism: for a fixed ``(seed, shards)`` the partition, the window
schedule, the per-destination record order (sorted by departure time,
source shard, sequence number) and every per-shard heap order are all
deterministic, so sharded runs are exactly repeatable.  ``shards=1``
short-circuits to the serial :func:`repro.workloads.base.run_workload`
path and is therefore *bit-identical* to an unsharded run.  Request id
spaces are partitioned (shard ``k`` draws ids from ``k * 10**9 + 1``)
so merged request lists never collide.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import multiprocessing
import pickle
import time
from typing import Any, Dict, List, Optional, Tuple

from ..errors import AuditError, SimulationError, WorkloadError

#: Each shard draws request ids from its own block so merged ledgers and
#: request lists never collide (10**9 ids per shard is far beyond any
#: run; the serial path keeps the ordinary shared counter).
ID_STRIDE = 10 ** 9

_INF = float("inf")


# --------------------------------------------------------------------------
# Shard context: partition map + cross-shard mailbox
# --------------------------------------------------------------------------
class ShardContext:
    """Partition ownership and the outgoing cross-shard mailbox.

    Passed to :class:`~repro.pfs.cluster.Cluster` as ``shard=``; the
    cluster builds :class:`~repro.pfs.remote.RemoteServerStub` objects
    for the servers this shard does not own, and the stubs post their
    wire records here.  The worker drains :attr:`outbox` at every
    window barrier.
    """

    def __init__(self, shard_id: int, nshards: int) -> None:
        self.shard_id = shard_id
        self.nshards = nshards
        #: Bound to the shard cluster's environment after construction.
        self.env = None
        #: Records departing this window: see the tuple formats below.
        self.outbox: List[tuple] = []
        #: token -> (attempt_done event, original SubRequest) for
        #: requests awaiting a remote reply.
        self.waiters: Dict[int, tuple] = {}
        self._tokens = itertools.count(1)
        #: Per-shard record sequence — the deterministic tie-breaker for
        #: same-instant departures at the coordinator's routing sort.
        self._seq = itertools.count(1)

    # ----------------------------------------------------------- ownership
    def owns_server(self, server_id: int) -> bool:
        return server_id % self.nshards == self.shard_id

    def owns_client(self, node_id: int) -> bool:
        return node_id % self.nshards == self.shard_id

    def shard_of_server(self, server_id: int) -> int:
        return server_id % self.nshards

    # ------------------------------------------------------------ mailbox
    # Record wire formats (plain picklable tuples):
    #   ("req", dst_shard, depart, src_shard, seq,
    #    token, server_id, client_name, wire_sub_pickle)
    #   ("rep", dst_shard, depart, src_shard, seq, token)
    def post_request(self, stub, client_name: str, wire_sub,
                     attempt_done, original_sub) -> None:
        """Queue one request record; the reply will complete
        ``attempt_done`` with ``original_sub`` as its value."""
        token = next(self._tokens)
        self.waiters[token] = (attempt_done, original_sub)
        self.outbox.append((
            "req", self.shard_of_server(stub.id), self.env.now,
            self.shard_id, next(self._seq),
            token, stub.id, client_name, pickle.dumps(wire_sub)))

    def post_reply(self, dst_shard: int, token: int) -> None:
        """Queue one reply record back to the requesting shard."""
        self.outbox.append((
            "rep", dst_shard, self.env.now, self.shard_id,
            next(self._seq), token))

    def take_outbox(self) -> List[tuple]:
        out = self.outbox
        self.outbox = []
        return out


# --------------------------------------------------------------------------
# The per-shard MPI run: launch only locally-owned ranks
# --------------------------------------------------------------------------
class _ForbiddenBarrier:
    """Barriers need every rank; a shard only has some of them."""

    def wait(self):
        raise WorkloadError(
            "MPI barriers are not supported with shards > 1: the barrier "
            "group spans shards (run this workload with shards=1)")


def _shard_run_cls():
    # Deferred import: repro.pfs imports repro.sim's package __init__,
    # so this module must not import repro.mpi/pfs at its own import
    # time from inside the repro.sim package namespace setup.
    from ..mpi.runtime import MPIRun, RankContext

    class _ShardRun(MPIRun):
        """One mpiexec job restricted to this shard's client nodes.

        Rank ``r`` runs on client node ``r % client_nodes``; the shard
        launches exactly the ranks whose node it owns.  Rank numbering,
        per-rank bodies and per-client RNG streams are unchanged, so
        the union over shards is the serial rank population.
        """

        def __init__(self, cluster, nprocs, client_nodes, shard):
            super().__init__(cluster, nprocs, client_nodes=client_nodes)
            self._shard = shard
            self.barrier = _ForbiddenBarrier()

        @property
        def collective(self):
            raise WorkloadError(
                "collective I/O is not supported with shards > 1: the "
                "two-phase exchange spans shards (run with shards=1)")

        def launch(self, body):
            env = self.cluster.env
            self._rank_procs = [
                env.process(body(RankContext(self, rank)),
                            name=f"rank{rank}")
                for rank in range(self.nprocs)
                if self._shard.owns_client(rank % self.client_nodes)
            ]
            return env.all_of(self._rank_procs)

    return _ShardRun


# --------------------------------------------------------------------------
# The shard worker: one environment + cluster + window protocol endpoint
# --------------------------------------------------------------------------
def _shard_config(cfg, shard_id: int):
    """Give per-shard suffixes to every configured telemetry path so
    concurrent shard workers never interleave writes in one file."""
    changes = {}
    obs_changes = {}
    for name in ("trace_path", "metrics_path", "metrics_text_path",
                 "timeline_path"):
        path = getattr(cfg.obs, name, None)
        if path:
            obs_changes[name] = f"{path}.shard{shard_id}"
    if obs_changes:
        changes["obs"] = dataclasses.replace(cfg.obs, **obs_changes)
    if getattr(cfg.audit, "trace_path", None):
        changes["audit"] = dataclasses.replace(
            cfg.audit, trace_path=f"{cfg.audit.trace_path}.shard{shard_id}")
    return dataclasses.replace(cfg, **changes) if changes else cfg


class ShardWorker:
    """Owns one shard: its cluster, its clock, its mailbox endpoint.

    Driven by the coordinator through a small RPC surface (`setup`,
    `launch`, `window`, `drain`, `sync`, `reset`, `mark_start`,
    `finalize`) that works identically in-process (``shard_mode=
    "inline"``) and across a pipe to a forked worker (``"process"``).
    Every return value is a plain picklable object.
    """

    def __init__(self, cfg, workload_pickle: bytes, shard_id: int,
                 nshards: int, lookahead: float,
                 fault_plan=None) -> None:
        self.cfg = _shard_config(cfg, shard_id)
        self.workload = pickle.loads(workload_pickle)
        self.shard_id = shard_id
        self.nshards = nshards
        self.lookahead = lookahead
        self.fault_plan = fault_plan
        self.ctx = ShardContext(shard_id, nshards)
        self.cluster = None
        self._run = None
        self._done = None
        self._start = 0.0
        self._base_read = 0
        self._base_written = 0

    # ------------------------------------------------------------ lifecycle
    def setup(self) -> int:
        from ..pfs.cluster import Cluster
        self.cluster = Cluster(self.cfg, shard=self.ctx,
                               fault_plan=self.fault_plan)
        self.ctx.env = self.cluster.env
        self.workload.prepare(self.cluster)
        return self.shard_id

    def launch(self) -> Tuple[float, bool]:
        """Start this shard's ranks; returns (next event time, done?)."""
        wl = self.workload
        run_cls = _shard_run_cls()
        self._run = run_cls(self.cluster, wl.nprocs,
                            wl.client_nodes or wl.nprocs, self.ctx)
        self._done = self._run.launch(wl.body)
        return self.cluster.env.peek(), self._done.triggered

    # -------------------------------------------------------------- window
    def window(self, t_end: float, records: List[tuple]
               ) -> Tuple[List[tuple], float, bool, tuple]:
        """Deliver ``records``, run until ``t_end``, drain the outbox.

        Returns ``(outbox, next_event_time, ranks_done, stats)``.
        Records whose arrival falls beyond ``t_end`` stay queued in the
        local heap (their timeout simply fires in a later window) — the
        returned ``next_event_time`` accounts for them via ``peek``.

        ``stats`` is the barrier profiler's per-window telemetry,
        ``(busy_ns, idle_ns, events, sent, recv)``: integer-nanosecond
        wall clocks (``time.perf_counter_ns`` — integers so the
        coordinator's busy + idle + wait == wall identity is *exact*,
        never float-rounded), the number of events the shard scheduled
        during the window (the heap sequence counter delta — the
        zero-cost activity proxy; the hot dispatch loop is left
        untouched), and the cross-shard mailbox volume both ways.
        """
        t0 = time.perf_counter_ns()
        env = self.cluster.env
        for rec in records:
            arrival = rec[2] + self.lookahead
            if rec[0] == "req":
                token, server_id, client_name, wire = rec[5:9]
                sub = pickle.loads(wire)
                env.process(
                    self._serve_remote(arrival, rec[3], token,
                                       server_id, client_name, sub),
                    name=f"xshard-req:{rec[3]}:{token}")
            else:
                env.process(self._deliver_reply(arrival, rec[5]),
                            name=f"xshard-rep:{rec[3]}:{rec[5]}")
        seq0 = env._seq
        t1 = time.perf_counter_ns()
        env.run(until=t_end)
        t2 = time.perf_counter_ns()
        outbox = self.ctx.take_outbox()
        t3 = time.perf_counter_ns()
        stats = (t2 - t1,                      # busy: simulating
                 (t1 - t0) + (t3 - t2),        # idle: mailbox plumbing
                 env._seq - seq0, len(outbox), len(records))
        return (outbox, env.peek(),
                self._done is not None and self._done.triggered, stats)

    def _serve_remote(self, arrival: float, src_shard: int, token: int,
                      server_id: int, client_name: str, sub):
        """Replay the server-side middle of a cross-shard round trip."""
        from ..devices.base import Op
        env = self.cluster.env
        delay = arrival - env.now
        if delay > 0.0:
            yield env.timeout(delay)
        server = self.cluster.servers[server_id]
        yield server.submit(sub)
        resp_payload = sub.nbytes if sub.op is Op.READ else 0
        ok = yield self.cluster.network.send_local_leg(
            server.name, client_name, resp_payload)
        if ok:
            self.ctx.post_reply(src_shard, token)

    def _deliver_reply(self, arrival: float, token: int):
        env = self.cluster.env
        delay = arrival - env.now
        if delay > 0.0:
            yield env.timeout(delay)
        waiter = self.ctx.waiters.pop(token, None)
        if waiter is not None:
            attempt_done, original_sub = waiter
            # Shared attempt event: a late reply to an earlier attempt
            # may race a retry's — first one wins, the rest are no-ops.
            if not attempt_done.triggered:
                attempt_done.succeed(original_sub)

    # -------------------------------------------------------- pass control
    def drain(self) -> float:
        self.cluster.drain()
        return self.cluster.env.now

    def peek(self) -> float:
        """Next local event time (seeds the settle loop's candidates)."""
        return self.cluster.env.peek()

    def sync(self, t: float) -> float:
        """Advance the local clock to the cluster-wide time ``t``.

        Used after per-shard drains (which advance clocks unevenly) so
        the next pass's cross-shard departures share one time base.  No
        rank is active during a sync, so request traffic in the outbox
        is a protocol violation.  Leftover *replies* are legal under
        faults: a retried sub-request's earlier serving can complete
        during the drain, after its client already resolved the shared
        attempt event — delivering them would be a no-op, so they are
        dropped here instead of routed.
        """
        env = self.cluster.env
        if t > env.now or env.peek() <= t:
            env.run(until=t)
        leftover = self.ctx.take_outbox()
        if any(rec[0] != "rep" for rec in leftover):
            raise SimulationError(
                f"shard {self.shard_id}: cross-shard request traffic "
                "during clock sync (rank still active after its pass "
                "ended)")
        return env.now

    def reset(self) -> None:
        from ..workloads.base import _reset_measurement_state
        _reset_measurement_state(self.cluster)

    def health(self) -> List[str]:
        """This shard's restoration oracle (meaningful once settled)."""
        from ..faults.health import restoration_failures
        return restoration_failures(self.cluster)

    def mark_start(self) -> float:
        """Begin the measured pass: align telemetry, snapshot baselines."""
        cl = self.cluster
        if cl.obs is not None and cl.obs.registry is not None:
            cl.obs.registry.sample(cl.env.now)
        self._start = cl.env.now
        # Server byte counters accumulate across warm passes (the serial
        # reset deliberately keeps them), so the cross-shard conservation
        # ledger diffs against baselines taken here.
        self._base_read = sum(s.stats.bytes_read for s in cl.servers
                              if not s.is_remote)
        self._base_written = sum(s.stats.bytes_written for s in cl.servers
                                 if not s.is_remote)
        return self._start

    # ------------------------------------------------------------- results
    def finalize(self) -> Dict:
        """Close out the run; return this shard's picklable summary."""
        from ..devices.base import Op
        cl = self.cluster
        summary: Dict = {
            "shard": self.shard_id,
            "makespan": cl.env.now - self._start,
            "now": cl.env.now,
            "requests": list(cl.requests),
            "timeouts": sum(c.timeouts for c in cl._clients.values()),
            "ibridge": None,
            "obs": None,
            "audit": None if cl.audit is None else cl.audit.verdict(),
            "delta_read": sum(s.stats.bytes_read for s in cl.servers
                              if not s.is_remote) - self._base_read,
            "delta_written": sum(s.stats.bytes_written for s in cl.servers
                                 if not s.is_remote) - self._base_written,
            "req_read_bytes": sum(
                p.nbytes for p in cl.requests
                if p.complete_time is not None
                and p.submit_time >= self._start and p.op is Op.READ),
            "req_write_bytes": sum(
                p.nbytes for p in cl.requests
                if p.complete_time is not None
                and p.submit_time >= self._start and p.op is Op.WRITE),
        }
        stats = cl.ibridge_stats()
        if stats is not None:
            summary["ibridge"] = dict(vars(stats))
        from ..workloads.base import recovery_snapshot
        summary["recovery"] = recovery_snapshot(cl)
        if cl.faults is not None:
            summary["fault_records"] = [
                {"time": r.time, "phase": r.phase,
                 "event": r.event.to_dict(), "detail": dict(r.detail),
                 "index": r.index}
                for r in cl.faults.records]
        if cl.obs is not None and cl.obs.timeline is not None:
            summary["timeline_rows"] = len(cl.obs.timeline.rows)
        if cl.obs is not None:
            cl.obs.finish_run()
            if cl.obs.tracer is not None:
                report = cl.obs.analyze()
                summary["obs"] = {
                    "spans": len(cl.obs.tracer.spans),
                    "traces": report.count,
                    "mean_magnification": report.mean_magnification,
                    "unsampled": cl.obs.tracer.unsampled,
                }
        cl.shutdown()
        return summary


# --------------------------------------------------------------------------
# Drivers: inline (same process) and forked worker processes
# --------------------------------------------------------------------------
class _InlineDriver:
    """All shards in this process; request-id counter swapped per call.

    The id partition that a forked worker installs once must be
    emulated here: every worker call runs with its shard's private
    ``itertools.count`` installed as ``repro.pfs.messages._request_ids``
    and the caller's counter restored afterwards, so interleaved serial
    runs in the same process stay bit-identical.
    """

    def __init__(self, specs: List[Dict]) -> None:
        self._counters = [itertools.count(s["shard_id"] * ID_STRIDE + 1)
                          for s in specs]
        self.workers = [ShardWorker(**s) for s in specs]

    def _call(self, i: int, method: str, args: tuple):
        from ..pfs import messages
        saved = messages._request_ids
        messages._request_ids = self._counters[i]
        try:
            return getattr(self.workers[i], method)(*args)
        finally:
            messages._request_ids = saved

    def call_all(self, method: str,
                 args_list: Optional[List[tuple]] = None) -> List:
        return [self._call(i, method,
                           args_list[i] if args_list is not None else ())
                for i in range(len(self.workers))]

    def close(self) -> None:
        pass


def _worker_main(conn, spec: Dict) -> None:
    """Forked worker body: install the shard id block, serve RPCs."""
    from ..pfs import messages
    messages._request_ids = itertools.count(
        spec["shard_id"] * ID_STRIDE + 1)
    worker = ShardWorker(**spec)
    while True:
        try:
            method, args = conn.recv()
        except EOFError:
            break
        if method == "_stop":
            break
        try:
            result = getattr(worker, method)(*args)
        except BaseException as exc:  # noqa: BLE001 - forwarded verbatim
            try:
                conn.send(("err", exc))
            except Exception:
                conn.send(("err", SimulationError(
                    f"shard {spec['shard_id']}: {type(exc).__name__}: {exc}")))
        else:
            conn.send(("ok", result))
    conn.close()


class _ProcessDriver:
    """One OS process per shard, command/response over a pipe."""

    def __init__(self, specs: List[Dict]) -> None:
        self._procs = []
        self._conns = []
        for spec in specs:
            parent_conn, child_conn = multiprocessing.Pipe()
            proc = multiprocessing.Process(
                target=_worker_main, args=(child_conn, spec), daemon=True)
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    def call_all(self, method: str,
                 args_list: Optional[List[tuple]] = None) -> List:
        for i, conn in enumerate(self._conns):
            conn.send((method,
                       args_list[i] if args_list is not None else ()))
        results = []
        error: Optional[BaseException] = None
        for i, conn in enumerate(self._conns):
            try:
                status, value = conn.recv()
            except EOFError:
                status, value = "err", SimulationError(
                    f"shard worker {i} died (pipe closed) during {method!r}")
            if status == "err" and error is None:
                error = (value if isinstance(value, BaseException)
                         else SimulationError(str(value)))
            results.append(value if status == "ok" else None)
        if error is not None:
            raise error
        return results

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("_stop", ()))
            except Exception:
                pass
            try:
                conn.close()
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=10)


# --------------------------------------------------------------------------
# Coordinator
# --------------------------------------------------------------------------
def _route(outboxes: List[List[tuple]], nshards: int) -> List[List[tuple]]:
    """Bucket records by destination shard, deterministically ordered."""
    buckets: List[List[tuple]] = [[] for _ in range(nshards)]
    for records in outboxes:
        for rec in records:
            buckets[rec[1]].append(rec)
    for bucket in buckets:
        # (departure time, source shard, per-source sequence): a total
        # order independent of outbox collection order.
        bucket.sort(key=lambda r: (r[2], r[3], r[4]))
    return buckets


def _run_pass(driver, nshards: int, lookahead: float, drain: bool,
              profile: Optional[List[Dict[str, Any]]] = None,
              guard=None) -> int:
    """One full workload pass under the window protocol; returns the
    number of window barriers executed.

    When ``profile`` is a list, every window appends one telemetry
    record to it (the barrier profiler).  Per shard the record carries
    busy/idle nanoseconds from the worker's own clock; the coordinator
    derives the barrier semantics: a window's wall time is the slowest
    shard's work time (``wall = max(busy + idle)`` — pure barrier
    arithmetic, immune to cross-process clock skew), every other shard
    waited out the difference (``wait = wall - work``), and the shard
    with the maximal work *gated* the window.  All integers, so
    ``busy + idle + wait == wall`` holds exactly for every shard.

    ``guard`` (the chaos budget hook) is called after every window as
    ``guard(t_end, events)`` with the window's end time and the total
    engine events the shards scheduled in it; it raises
    :class:`~repro.errors.EpisodeBudgetError` to abort a runaway
    episode.  It runs at the coordinator — never inside a shard's heap
    — so it cannot perturb event order.
    """
    launches = driver.call_all("launch")
    next_times = [l[0] for l in launches]
    dones = [l[1] for l in launches]
    pending: List[List[tuple]] = [[] for _ in range(nshards)]
    windows = 0
    t_prev: Optional[float] = None
    while not (all(dones) and not any(pending)):
        candidates = [t for t in next_times if t != _INF]
        for bucket in pending:
            candidates.extend(rec[2] + lookahead for rec in bucket)
        if not candidates:
            raise SimulationError(
                "sharded run cannot progress: every shard is out of "
                "events but some ranks never finished (lost cross-shard "
                "completion?)")
        if t_prev is None:
            t_prev = min(candidates)
        t_next = min(candidates) + lookahead
        results = driver.call_all(
            "window", [(t_next, pending[i]) for i in range(nshards)])
        windows += 1
        if profile is not None:
            stats = [r[3] for r in results]
            busy = [s[0] for s in stats]
            idle = [s[1] for s in stats]
            work = [b + i for b, i in zip(busy, idle)]
            wall = max(work)
            profile.append({
                "t_end": t_next,
                "width": t_next - t_prev,
                "wall_ns": wall,
                "gating": work.index(wall),
                "busy_ns": busy,
                "idle_ns": idle,
                "wait_ns": [wall - w for w in work],
                "events": [s[2] for s in stats],
                "sent": [s[3] for s in stats],
                "recv": [s[4] for s in stats],
            })
        t_prev = t_next
        if guard is not None:
            guard(t_next, sum(r[3][2] for r in results))
        next_times = [r[1] for r in results]
        dones = [r[2] for r in results]
        pending = _route([r[0] for r in results], nshards)
    if drain:
        nows = driver.call_all("drain")
        t_sync = max(nows)
        driver.call_all("sync", [(t_sync,) for _ in range(nshards)])
    return windows


def _run_settle(driver, nshards: int, lookahead: float, until: float,
                guard=None) -> int:
    """Advance every shard past ``until`` (the plan's fault horizon).

    The rank bodies are done; what is still live is the injector's
    cleanup transitions, recovery writeback, and any straggling
    cross-shard serves from retried sub-requests.  The same window
    protocol as :func:`_run_pass` runs them out — candidates are local
    events *before* ``until`` plus every pending cross-shard arrival —
    and a final ``sync`` aligns all clocks at the horizon (dropping
    late replies; see :meth:`ShardWorker.sync`).  Returns the number of
    windows executed.
    """
    next_times = driver.call_all("peek")
    pending: List[List[tuple]] = [[] for _ in range(nshards)]
    windows = 0
    while True:
        candidates = [t for t in next_times if t < until]
        for bucket in pending:
            # Pending mail must be delivered regardless of the horizon.
            candidates.extend(rec[2] + lookahead for rec in bucket)
        if not candidates:
            break
        t_next = min(candidates) + lookahead
        results = driver.call_all(
            "window", [(t_next, pending[i]) for i in range(nshards)])
        windows += 1
        if guard is not None:
            guard(t_next, sum(r[3][2] for r in results))
        next_times = [r[1] for r in results]
        pending = _route([r[0] for r in results], nshards)
    driver.call_all("sync", [(until,) for _ in range(nshards)])
    return windows


def _merge_audit(cfg, summaries: List[Dict]) -> Optional[Dict]:
    """Combine per-shard audit verdicts into one cluster-wide verdict."""
    verdicts = [s["audit"] for s in summaries if s["audit"] is not None]
    if not verdicts:
        return None
    firsts = [v["first"] for v in verdicts if v["first"] is not None]
    return {
        "ok": all(v["ok"] for v in verdicts),
        "violations": sum(v["violations"] for v in verdicts),
        "checks": sorted({c for v in verdicts for c in v["checks"]}),
        "watchdog_fired": sum(v["watchdog_fired"] for v in verdicts),
        "first": (min(firsts, key=lambda f: f.get("t") or 0.0)
                  if firsts else None),
    }


def _shard_specs(cfg, workload, nshards: int, lookahead: float,
                 fault_plan=None) -> List[Dict]:
    wire = pickle.dumps(workload)
    return [{"cfg": cfg, "workload_pickle": wire, "shard_id": k,
             "nshards": nshards, "lookahead": lookahead,
             "fault_plan": fault_plan}
            for k in range(nshards)]


def _lookahead(cfg) -> float:
    return (cfg.shard_lookahead if cfg.shard_lookahead is not None
            else cfg.network.latency)


def run_sharded_workload(cfg, workload, warm_runs: int = 0,
                         drain: bool = True,
                         reset_after_warm: bool = True,
                         fault_plan=None):
    """Run ``workload`` on a cluster partitioned into ``cfg.shards``.

    The sharded analog of :func:`repro.workloads.base.run_workload`
    with the same pass structure (warm passes, measurement reset, timed
    pass, drain) and a merged :class:`~repro.analysis.metrics.RunResult`:
    requests concatenated across shards (canonically sorted), makespan
    = the slowest shard's, iBridge/obs counters summed, and the merged
    audit verdict (plus the cross-shard byte-conservation check) on
    ``result.audit_verdict``.  ``shards=1`` routes through the serial
    engine unchanged and is bit-identical to it.

    ``fault_plan`` installs the plan *partitioned* across the shard
    injectors (see ``repro.faults.partition_events``); the merged
    result carries the coordinator-sorted transition log on
    ``result.fault_events`` (each record tagged with its driving shard)
    and the key-wise sum of the per-shard recovery snapshots on
    ``result.recovery``.
    """
    cfg.validate()
    if cfg.shards <= 1:
        from ..pfs.cluster import Cluster
        from ..workloads.base import run_workload
        cluster = Cluster(cfg, fault_plan=fault_plan)
        return run_workload(cluster, workload, drain=drain,
                            warm_runs=warm_runs,
                            reset_after_warm=reset_after_warm)

    nshards = cfg.shards
    lookahead = _lookahead(cfg)
    specs = _shard_specs(cfg, workload, nshards, lookahead,
                         fault_plan=fault_plan)
    driver_cls = (_InlineDriver if cfg.shard_mode == "inline"
                  else _ProcessDriver)
    driver = driver_cls(specs)
    try:
        driver.call_all("setup")
        for _ in range(max(0, warm_runs)):
            _run_pass(driver, nshards, lookahead, drain)
        if warm_runs and reset_after_warm:
            driver.call_all("reset")
        driver.call_all("mark_start")
        profile_windows: List[Dict[str, Any]] = []
        windows = _run_pass(driver, nshards, lookahead, drain,
                            profile=profile_windows)
        summaries = driver.call_all("finalize")
    finally:
        driver.close()
    profile = {"nshards": nshards, "lookahead": lookahead,
               "windows": profile_windows}
    return _merge_results(cfg, workload, summaries, windows, profile)


def run_sharded_episode(cfg, workload, fault_plan=None,
                        settle_until: Optional[float] = None,
                        warm_runs: int = 0, guard=None) -> Dict:
    """Chaos-shaped sharded run: pass, settle past the horizon, drain.

    The sharded analog of the chaos episode body: never raises for
    in-simulation failures — the first :class:`~repro.errors.ReproError`
    out of the window protocol is caught and returned, the workers are
    *always* finalized (they survive per-RPC exceptions), and the
    restoration oracle is read only when the settle completed.  Mirrors
    the serial runner's budget semantics: a budget abort skips the
    settle (the run is torn anyway).

    Returns a dict with ``summaries`` (per-shard finalize payloads),
    ``error`` (the caught exception or ``None``), ``settled``,
    ``restoration`` (concatenated per-shard oracle findings), and
    ``windows``.
    """
    from ..errors import EpisodeBudgetError, ReproError
    cfg.validate()
    nshards = cfg.shards
    lookahead = _lookahead(cfg)
    specs = _shard_specs(cfg, workload, nshards, lookahead,
                         fault_plan=fault_plan)
    driver_cls = (_InlineDriver if cfg.shard_mode == "inline"
                  else _ProcessDriver)
    driver = driver_cls(specs)
    error: Optional[BaseException] = None
    settled = False
    windows = 0
    restoration: List[str] = []
    try:
        driver.call_all("setup")
        try:
            for _ in range(max(0, warm_runs)):
                windows += _run_pass(driver, nshards, lookahead,
                                     drain=True, guard=guard)
            if warm_runs:
                driver.call_all("reset")
            driver.call_all("mark_start")
            windows += _run_pass(driver, nshards, lookahead, drain=True,
                                 guard=guard)
        except ReproError as exc:
            error = exc
        if not isinstance(error, EpisodeBudgetError):
            try:
                if settle_until is not None:
                    windows += _run_settle(driver, nshards, lookahead,
                                           settle_until, guard=guard)
                nows = driver.call_all("drain")
                driver.call_all("sync",
                                [(max(nows),) for _ in range(nshards)])
                settled = True
            except ReproError as exc:
                if error is None:
                    error = exc
        if settled:
            for failures in driver.call_all("health"):
                restoration.extend(failures)
        summaries = driver.call_all("finalize")
    finally:
        driver.close()
    return {"summaries": summaries, "error": error, "settled": settled,
            "restoration": restoration, "windows": windows}


def merge_fault_records(summaries: List[Dict]) -> List[Dict]:
    """One cluster-wide fault transition log from per-shard injectors.

    Records are tagged with the shard that drove them and sorted on
    ``(time, plan index, begin-before-end, shard)`` — the serial
    injector's chronological/plan order, so a targeted-only plan's
    merged log equals the serial log modulo the ``shard`` tags.
    Broadcast events (network windows, fleet storms) legitimately
    appear once per shard: each shard applied the window to its own
    fabric view, and the merged log says so.
    """
    events: List[Dict] = []
    for s in summaries:
        for rec in s.get("fault_records") or ():
            events.append(dict(rec, shard=s["shard"]))
    events.sort(key=lambda r: (r["time"], r["index"],
                               0 if r["phase"] == "begin" else 1,
                               r["shard"]))
    return events


def merge_recovery(summaries: List[Dict]) -> Dict[str, float]:
    """Key-wise sum of per-shard recovery snapshots.

    Every counter in :func:`repro.workloads.base.recovery_snapshot` is
    a sum over disjoint per-shard populations (local clients, local
    servers, the local fabric view), so addition is the exact merge.
    """
    merged: Dict[str, float] = {}
    for s in summaries:
        for key, value in (s.get("recovery") or {}).items():
            merged[key] = merged.get(key, 0.0) + value
    return merged


def _merge_results(cfg, workload, summaries: List[Dict], windows: int,
                   profile: Optional[Dict[str, Any]] = None):
    from ..analysis.metrics import RunResult

    requests = []
    for s in summaries:
        requests.extend(s["requests"])
    requests.sort(key=lambda r: (
        r.complete_time if r.complete_time is not None else _INF,
        r.submit_time if r.submit_time is not None else _INF,
        r.rank, r.offset, r.id))

    agg = None
    if any(s["ibridge"] for s in summaries):
        from ..core.manager import IBridgeStats
        agg = IBridgeStats()
        for s in summaries:
            if s["ibridge"]:
                for name, value in s["ibridge"].items():
                    setattr(agg, name, getattr(agg, name) + value)

    result = RunResult(
        name=workload.name,
        makespan=max(s["makespan"] for s in summaries),
        total_bytes=workload.total_bytes,
        requests=requests,
        ssd_fraction=agg.ssd_fraction if agg is not None else 0.0,
    )
    obs_parts = [s["obs"] for s in summaries if s["obs"] is not None]
    if obs_parts:
        traces = sum(o["traces"] for o in obs_parts)
        result.extra["obs_spans"] = float(sum(o["spans"] for o in obs_parts))
        result.extra["obs_traces"] = float(traces)
        result.extra["obs_mean_magnification"] = (
            sum(o["mean_magnification"] * o["traces"] for o in obs_parts)
            / traces if traces else 0.0)
    result.extra["shards"] = float(len(summaries))
    result.extra["shard_windows"] = float(windows)
    if any(s.get("fault_records") is not None for s in summaries):
        result.fault_events = merge_fault_records(summaries)
        result.recovery = merge_recovery(summaries)
    timeline_rows = sum(s.get("timeline_rows") or 0 for s in summaries)
    if timeline_rows:
        result.extra["timeline_rows"] = float(timeline_rows)
    if profile is not None:
        # Wall-clock telemetry, deliberately excluded from run_digest
        # (the digest hashes only numeric extras): the same simulated
        # run profiles differently on every host.
        result.extra["shard_profile"] = profile

    merged = _merge_audit(cfg, summaries)

    # Cross-shard conservation: with no timeouts (hence no duplicate
    # at-least-once servings), the bytes the servers accounted during
    # the measured pass must equal the bytes the completed application
    # requests asked for — the one ledger no single shard can check.
    timeouts = sum(s["timeouts"] for s in summaries)
    conserved = True
    if timeouts == 0:
        delta_read = sum(s["delta_read"] for s in summaries)
        delta_written = sum(s["delta_written"] for s in summaries)
        req_read = sum(s["req_read_bytes"] for s in summaries)
        req_write = sum(s["req_write_bytes"] for s in summaries)
        conserved = (delta_read == req_read and delta_written == req_write)
        if not conserved:
            message = (f"servers read {delta_read} B for {req_read} B of "
                       f"completed read requests, wrote {delta_written} B "
                       f"for {req_write} B of completed write requests")
            if merged is None:
                merged = {"ok": False, "violations": 0, "checks": [],
                          "watchdog_fired": 0, "first": None}
            merged["ok"] = False
            merged["violations"] += 1
            merged["checks"] = sorted(set(merged["checks"])
                                      | {"xshard-conservation"})
            if merged["first"] is None:
                merged["first"] = {"check": "xshard-conservation",
                                   "message": message, "t": None}
            if cfg.audit.enabled and cfg.audit.strict:
                raise AuditError(f"[xshard-conservation] {message}")
    result.extra["xshard_conserved"] = 1.0 if conserved else 0.0
    result.audit_verdict = merged
    return result


# --------------------------------------------------------------------------
# Canonical run digests
# --------------------------------------------------------------------------
def run_digest(result) -> str:
    """A canonical sha256 over everything behavior-visible in a result.

    Request *ids* are excluded on purpose: the sharded engine draws ids
    from per-shard blocks (and back-to-back serial runs in one process
    keep counting up), but ids are labels — they never influence the
    event schedule.  Floats are hashed via ``float.hex`` so the digest
    is exact, not printf-rounded.

    Only numeric extras are hashed: non-numeric extras (the wall-clock
    ``shard_profile``) are host telemetry that varies run over run on
    identical simulated behavior.
    """
    def fhex(x):
        return None if x is None else float(x).hex()

    reqs = sorted(result.requests, key=lambda r: (
        r.complete_time if r.complete_time is not None else -1.0,
        r.submit_time if r.submit_time is not None else -1.0,
        r.rank, r.offset, r.nbytes, r.op.value))
    payload = {
        "name": result.name,
        "makespan": fhex(result.makespan),
        "total_bytes": int(result.total_bytes),
        "ssd_fraction": fhex(result.ssd_fraction),
        "requests": [
            [r.op.value, r.rank, r.offset, r.nbytes,
             fhex(r.submit_time), fhex(r.complete_time)] for r in reqs],
        "extra": {k: fhex(v) for k, v in sorted(result.extra.items())
                  if v is None or isinstance(v, (int, float))},
        "recovery": {k: fhex(v) for k, v in sorted(result.recovery.items())},
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------
# Barrier-profile analysis
# --------------------------------------------------------------------------
def analyze_shard_profile(profile: Dict[str, Any]) -> Dict[str, Any]:
    """Digest a ``result.extra["shard_profile"]`` record.

    Per shard, total busy (simulating), idle (mailbox plumbing), and
    barrier-wait nanoseconds, plus how many windows that shard gated
    (was the slowest worker in).  The *bottleneck* shard is the one
    with the largest total work (busy + idle) — the shard the barriers
    spend the run waiting for.  *Parallel efficiency* is aggregate busy
    time over aggregate wall time across all workers,
    ``sum(busy) / (nshards * sum(wall))``: 1.0 means every worker
    simulated for the whole run, lower means barrier waits and mailbox
    plumbing ate the difference.
    """
    nshards = profile["nshards"]
    windows = profile["windows"]
    busy = [0] * nshards
    idle = [0] * nshards
    wait = [0] * nshards
    events = [0] * nshards
    sent = [0] * nshards
    recv = [0] * nshards
    gated = [0] * nshards
    wall_total = 0
    for w in windows:
        wall_total += w["wall_ns"]
        gated[w["gating"]] += 1
        for k in range(nshards):
            busy[k] += w["busy_ns"][k]
            idle[k] += w["idle_ns"][k]
            wait[k] += w["wait_ns"][k]
            events[k] += w["events"][k]
            sent[k] += w["sent"][k]
            recv[k] += w["recv"][k]
    work = [b + i for b, i in zip(busy, idle)]
    bottleneck = work.index(max(work)) if nshards else 0
    efficiency = (sum(busy) / (nshards * wall_total)
                  if wall_total > 0 else 0.0)
    widths = [w["width"] for w in windows]
    return {
        "nshards": nshards,
        "lookahead": profile["lookahead"],
        "windows": len(windows),
        "mean_width": sum(widths) / len(widths) if widths else 0.0,
        "wall_ns": wall_total,
        "busy_ns": busy,
        "idle_ns": idle,
        "wait_ns": wait,
        "events": events,
        "sent": sent,
        "recv": recv,
        "gated_windows": gated,
        "bottleneck": bottleneck,
        "efficiency": efficiency,
    }


def format_shard_profile(profile: Dict[str, Any]) -> str:
    """Render :func:`analyze_shard_profile` as a console table."""
    a = analyze_shard_profile(profile)
    ms = 1e-6  # ns -> ms

    lines = [
        f"shard barrier profile: {a['windows']} windows, "
        f"lookahead {a['lookahead']:g}s, "
        f"mean width {a['mean_width']:.6g}s",
        f"parallel efficiency {a['efficiency']:.1%} "
        f"(bottleneck: shard {a['bottleneck']})",
        f"{'shard':>5} {'busy ms':>10} {'idle ms':>10} {'wait ms':>10} "
        f"{'events':>9} {'sent':>7} {'recv':>7} {'gated':>6}",
    ]
    for k in range(a["nshards"]):
        tag = "*" if k == a["bottleneck"] else " "
        lines.append(
            f"{k:>4}{tag} {a['busy_ns'][k] * ms:>10.2f} "
            f"{a['idle_ns'][k] * ms:>10.2f} {a['wait_ns'][k] * ms:>10.2f} "
            f"{a['events'][k]:>9} {a['sent'][k]:>7} {a['recv'][k]:>7} "
            f"{a['gated_windows'][k]:>6}")
    return "\n".join(lines)
