"""The per-run audit runtime: trace sink + auditors + watchdog.

One :class:`AuditRuntime` exists per cluster (or per standalone
:class:`~repro.pfs.server.DataServer` in unit tests).  It owns the
shared :class:`~repro.audit.trace.EventTrace`, hands each iBridge
manager a :class:`~repro.audit.invariants.ManagerAuditor`, registers
every block queue with the livelock watchdog, and collects violations.

In strict mode (the default) the first violation raises
:class:`~repro.errors.AuditError` at the site of the inconsistency — the
most useful stack trace a simulation bug can produce.  In non-strict
mode violations accumulate on :attr:`violations` for post-run review.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from ..config import AuditConfig
from ..errors import AuditError
from .trace import EventTrace
from .watchdog import LivelockWatchdog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..block.queue import BlockQueue
    from ..core.manager import IBridgeManager
    from ..sim import Environment
    from .invariants import ManagerAuditor


class AuditRuntime:
    """Shared state of the auditing subsystem for one simulation run."""

    def __init__(self, env: "Environment", config: AuditConfig) -> None:
        self.env = env
        self.config = config
        self.trace = EventTrace(config.trace_path, config.trace_limit)
        self.violations: List[Dict] = []
        self.watchdog = (LivelockWatchdog(env, self, config.watchdog_window)
                         if config.watchdog else None)
        self._managers: List["ManagerAuditor"] = []
        #: Number of injected faults currently active (repro.faults).
        self.active_faults = 0
        #: Sim time of the most recent fault begin/end transition.
        self.last_fault_transition: float = float("-inf")

    # ------------------------------------------------------------- wiring
    def attach_manager(self, manager: "IBridgeManager") -> "ManagerAuditor":
        """Create (and register) the auditor for one iBridge manager."""
        from .invariants import ManagerAuditor
        auditor = ManagerAuditor(manager, self)
        self._managers.append(auditor)
        if self.watchdog is not None:
            self.watchdog.watch_manager(manager)
        return auditor

    def watch_queue(self, queue: "BlockQueue") -> None:
        """Register a block queue for stall detection."""
        if self.watchdog is not None:
            self.watchdog.watch_queue(queue)

    # ------------------------------------------------------------- faults
    def fault_begin(self, kind: str, stalling: bool = True,
                    **context) -> None:
        """An injected fault window opened (emits ``fault_begin``).

        ``stalling`` marks windows that stop block-request completions
        by design (device fail-stop, server crash); while any such fault
        is active the livelock watchdog stands down — a paused device
        legitimately completes nothing for a whole window.
        """
        if stalling:
            self.active_faults += 1
        self.last_fault_transition = self.env.now
        self.trace.emit(self.env.now, "fault_begin", fault=kind, **context)

    def fault_end(self, kind: str, stalling: bool = True,
                  **context) -> None:
        """An injected fault window closed / recovery ran (``fault_end``)."""
        if stalling:
            self.active_faults = max(0, self.active_faults - 1)
        self.last_fault_transition = self.env.now
        self.trace.emit(self.env.now, "fault_end", fault=kind, **context)

    # ---------------------------------------------------------- reporting
    def violation(self, check: str, message: str, **context) -> None:
        """Record an invariant violation; raise in strict mode."""
        # Context keys are free-form; shield the record's own fields.
        context = {(f"ctx_{k}" if k in ("t", "kind", "check", "message")
                    else k): v for k, v in context.items()}
        record = self.trace.emit(self.env.now, "violation", check=check,
                                 message=message, **context)
        self.violations.append(record)
        self.trace.flush()
        if self.config.strict:
            raise AuditError(f"[{check}] t={self.env.now:.6f}: {message}")

    def checkpoint(self, event: str = "checkpoint") -> None:
        """Run every manager's ledger + coherence checks right now."""
        for auditor in self._managers:
            auditor.check(event)

    @property
    def ok(self) -> bool:
        """True while no invariant has been violated."""
        return not self.violations

    def verdict(self) -> Dict:
        """Structured oracle verdict over the run so far.

        The raise-on-first-violation contract (strict mode) is the
        right default for unit tests, but an *oracle* consumer — the
        chaos episode runner — wants every violation collected and then
        one machine-readable summary at the end.  Run non-strict
        (``AuditConfig(strict=False)``) and call this after the run::

            {"ok": False, "violations": 3,
             "checks": ["dirty-ledger", "livelock"],
             "watchdog_fired": 1,
             "first": {"check": "dirty-ledger", "message": "..."}}

        ``checks`` is sorted and de-duplicated so verdicts are stable
        hash inputs for episode signatures.
        """
        first = self.violations[0] if self.violations else None
        return {
            "ok": self.ok,
            "violations": len(self.violations),
            "checks": sorted({str(v.get("check", "?"))
                              for v in self.violations}),
            "watchdog_fired": (self.watchdog.fired
                               if self.watchdog is not None else 0),
            "first": (None if first is None else
                      {"check": first.get("check"),
                       "message": first.get("message"),
                       "t": first.get("t")}),
        }

    def final_check(self) -> None:
        """End-of-run conservation over every attached manager."""
        for auditor in self._managers:
            auditor.final_check()
        self.trace.flush()

    def stop(self) -> None:
        """Stop the watchdog (end of simulation) and flush the trace."""
        if self.watchdog is not None:
            self.watchdog.stop()
        self.trace.flush()

    def summary(self) -> Dict[str, int]:
        """Lifetime trace-event counts by kind (for reports/examples)."""
        return self.trace.summary()
