"""Shadow accounting and coherence checks for one iBridge manager.

The auditor keeps its *own* ledgers of payload bytes, fed by small hooks
at the manager's decision points, and cross-checks them against the
structures the manager maintains (mapping table, log store, partition
accounts, reported stats).  Because the ledgers are independent of the
audited code, a bookkeeping bug in either place surfaces as a mismatch
instead of silently skewing experiment results.

Invariants checked (see docs/AUDITING.md for the full catalogue):

* **Dirty ledger** — redirected payload minus written-back minus
  superseded payload equals ``MappingTable.dirty_bytes`` at every
  synchronous point.
* **Read conservation** — every read serves exactly the requested
  payload bytes: SSD piece bytes + disk gap payload == request size,
  measured from the manager's *reported stats* (so stats inflation,
  e.g. counting readahead extension bytes as payload, is caught).
* **Cache coherence** — partition byte/return accounts, the
  ``_by_lbn`` index, the log store's live-extent set and per-segment
  accounting all agree with the mapping table.
* **Capacity** — total partition usage never exceeds the configured
  capacity; per-class usage never exceeds the class share under static
  partitioning.
* **End-of-run conservation** — after a drain, no dirty bytes remain
  and accepted write payload equals disk-foreground plus SSD-redirected
  payload.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Tuple

from ..core.mapping import CacheKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..core.manager import IBridgeManager
    from .runtime import AuditRuntime


class ManagerAuditor:
    """Per-manager conservation ledger + coherence shadow checks."""

    def __init__(self, manager: "IBridgeManager", runtime: "AuditRuntime") -> None:
        self.manager = manager
        self.runtime = runtime
        cfg = runtime.config
        self._coherence = cfg.check_coherence
        self._conservation = cfg.check_conservation
        # Independent payload ledgers (bytes).
        self.client_write_bytes = 0     # accepted write payload
        self.disk_write_bytes = 0       # served at the disk (foreground)
        self.ssd_redirect_bytes = 0     # redirected into the SSD log
        self.writeback_bytes = 0        # flushed SSD log -> disk
        self.superseded_bytes = 0       # dirty bytes replaced by new writes
        self.forfeited_bytes = 0        # dirty bytes lost to SSD fail-stop
        self.fill_bytes = 0             # clean read-miss admissions
        self.read_requested_bytes = 0   # read payload requested
        self.read_served_bytes = 0      # read payload served (ssd + disk)
        self.checks = 0

    # ------------------------------------------------------------- helpers
    def _fail(self, check: str, message: str, **context) -> None:
        self.runtime.violation(check, message,
                               server=self.manager.server_id, **context)

    def _trace(self, kind: str, **fields) -> None:
        self.runtime.trace.emit(self.runtime.env.now, kind,
                                server=self.manager.server_id, **fields)

    # ----------------------------------------------------- write-side hooks
    def note_client_write(self, nbytes: int) -> None:
        self.client_write_bytes += nbytes
        self._trace("client_write", nbytes=nbytes)

    def note_disk_write(self, nbytes: int) -> None:
        self.disk_write_bytes += nbytes
        self._trace("disk_write", nbytes=nbytes)

    def note_ssd_redirect(self, nbytes: int) -> None:
        self.ssd_redirect_bytes += nbytes
        self._trace("ssd_write", nbytes=nbytes)

    def note_writeback(self, nbytes: int) -> None:
        self.writeback_bytes += nbytes
        self._trace("writeback", nbytes=nbytes)

    def note_superseded(self, nbytes: int) -> None:
        self.superseded_bytes += nbytes
        self._trace("superseded", nbytes=nbytes)

    def note_forfeited(self, nbytes: int) -> None:
        """Dirty payload lost to an SSD fail-stop (failure-aware ledger)."""
        self.forfeited_bytes += nbytes
        self._trace("forfeited", nbytes=nbytes)

    def note_fill(self, nbytes: int) -> None:
        self.fill_bytes += nbytes
        self._trace("fill", nbytes=nbytes)

    # ------------------------------------------------------ read-side hook
    def note_read(self, requested: int, ssd_bytes: int, disk_bytes: int,
                  readahead_bytes: int) -> None:
        """Per-read conservation, measured from the reported stats deltas."""
        self.read_requested_bytes += requested
        self.read_served_bytes += ssd_bytes + disk_bytes
        self._trace("read", requested=requested, ssd=ssd_bytes,
                    disk=disk_bytes, readahead=readahead_bytes)
        if not self._conservation:
            return
        if ssd_bytes + disk_bytes != requested:
            self._fail(
                "read-conservation",
                f"read of {requested} B reported {ssd_bytes} B from SSD + "
                f"{disk_bytes} B from disk "
                f"(+{readahead_bytes} B readahead extension)",
                requested=requested, ssd=ssd_bytes, disk=disk_bytes,
                readahead=readahead_bytes)

    # ------------------------------------------------------------- checks
    def check(self, event: str = "") -> None:
        """Run the continuous invariants (called after every mutation)."""
        self.checks += 1
        if self._conservation:
            self._check_dirty_ledger(event)
        if self._coherence:
            self._check_coherence(event)

    def _check_dirty_ledger(self, event: str) -> None:
        ledger = (self.ssd_redirect_bytes - self.writeback_bytes
                  - self.superseded_bytes - self.forfeited_bytes)
        actual = self.manager.mapping.dirty_bytes
        if ledger != actual:
            self._fail(
                "dirty-ledger",
                f"after {event or 'mutation'}: conservation ledger says "
                f"{ledger} dirty bytes (redirected {self.ssd_redirect_bytes}"
                f" - writeback {self.writeback_bytes}"
                f" - superseded {self.superseded_bytes}"
                f" - forfeited {self.forfeited_bytes}), mapping table "
                f"holds {actual}", event=event, ledger=ledger, actual=actual)

    def _check_coherence(self, event: str) -> None:
        mgr = self.manager
        entries = mgr.mapping.entries

        # Partition byte and return accounting vs the mapping table.
        by_kind: Dict[CacheKind, int] = {CacheKind.RANDOM: 0,
                                         CacheKind.FRAGMENT: 0}
        ret_by_kind: Dict[CacheKind, float] = {CacheKind.RANDOM: 0.0,
                                               CacheKind.FRAGMENT: 0.0}
        for e in entries:
            by_kind[e.kind] += e.nbytes
            ret_by_kind[e.kind] += e.ret
        for kind in (CacheKind.RANDOM, CacheKind.FRAGMENT):
            used = mgr.partition.used(kind)
            if used != by_kind[kind]:
                self._fail(
                    "partition-bytes",
                    f"after {event or 'mutation'}: partition counts {used} "
                    f"{kind.value} bytes, mapping table holds "
                    f"{by_kind[kind]}", event=event, kind=kind.value,
                    partition=used, mapping=by_kind[kind])
            ret_sum = mgr.partition._ret_sum[kind]
            if not math.isclose(ret_sum, ret_by_kind[kind],
                                rel_tol=1e-9, abs_tol=1e-12):
                self._fail(
                    "partition-returns",
                    f"after {event or 'mutation'}: partition return sum "
                    f"{ret_sum!r} for {kind.value} != mapping sum "
                    f"{ret_by_kind[kind]!r}", event=event, kind=kind.value)

        # Capacity bounds.
        total_used = mgr.partition.used()
        if total_used > mgr.partition.capacity:
            self._fail(
                "partition-capacity",
                f"after {event or 'mutation'}: partition holds {total_used} "
                f"bytes, capacity {mgr.partition.capacity}",
                event=event, used=total_used, capacity=mgr.partition.capacity)
        if not mgr.ib.dynamic_partition:
            # Static shares are stable, so per-class bounds are hard.
            for kind in (CacheKind.RANDOM, CacheKind.FRAGMENT):
                cap = mgr.partition.class_capacity(kind)
                if mgr.partition.used(kind) > cap:
                    self._fail(
                        "class-capacity",
                        f"after {event or 'mutation'}: {kind.value} class "
                        f"holds {mgr.partition.used(kind)} bytes, share is "
                        f"{cap}", event=event, kind=kind.value)

        # The _by_lbn index mirrors the mapping table exactly.
        lbns = {e.ssd_lbn: e for e in entries}
        if set(mgr._by_lbn) != set(lbns):
            self._fail(
                "lbn-index",
                f"after {event or 'mutation'}: _by_lbn keys "
                f"{sorted(mgr._by_lbn)} != entry LBNs {sorted(lbns)}",
                event=event)
        else:
            for lbn, entry in lbns.items():
                if mgr._by_lbn[lbn] is not entry:
                    self._fail(
                        "lbn-index",
                        f"after {event or 'mutation'}: _by_lbn[{lbn}] is "
                        f"entry {mgr._by_lbn[lbn].id}, mapping says "
                        f"{entry.id}", event=event, lbn=lbn)

        log = mgr._log
        if log is None:
            return

        # Every cached entry is backed by a live log extent whose size is
        # the payload plus the persisted mapping-table entry.  Both
        # admission paths (redirected writes and read-miss fills) must
        # charge identically or log occupancy drifts from reality.
        from ..core.manager import TABLE_ENTRY_BYTES
        for e in entries:
            info = log._extents.get(e.ssd_lbn)
            if info is None:
                self._fail(
                    "log-extent",
                    f"after {event or 'mutation'}: entry {e.id} points at "
                    f"LBN {e.ssd_lbn} with no live log extent",
                    event=event, entry=e.id, lbn=e.ssd_lbn)
                continue
            _seg, size = info
            if size != e.nbytes + TABLE_ENTRY_BYTES:
                self._fail(
                    "log-extent-size",
                    f"after {event or 'mutation'}: entry {e.id} holds "
                    f"{e.nbytes} payload bytes but its log extent is "
                    f"{size} bytes (expected payload + "
                    f"{TABLE_ENTRY_BYTES} B table entry)",
                    event=event, entry=e.id, extent=size, payload=e.nbytes)

        # Log segment accounting agrees with the live-extent set.
        live_by_seg: Dict[int, int] = {}
        for _lbn, (seg_idx, nbytes) in log._extents.items():
            live_by_seg[seg_idx] = live_by_seg.get(seg_idx, 0) + nbytes
        for seg in log.segments:
            expect = live_by_seg.get(seg.index, 0)
            if seg.live_bytes != expect:
                self._fail(
                    "log-segment",
                    f"after {event or 'mutation'}: segment {seg.index} "
                    f"accounts {seg.live_bytes} live bytes, extents sum to "
                    f"{expect}", event=event, segment=seg.index)
            if not (0 <= seg.live_bytes <= seg.write_cursor <= seg.size):
                self._fail(
                    "log-segment",
                    f"after {event or 'mutation'}: segment {seg.index} "
                    f"accounting out of bounds (live {seg.live_bytes}, "
                    f"cursor {seg.write_cursor}, size {seg.size})",
                    event=event, segment=seg.index)
        for seg in log._free:
            if seg.live_bytes != 0 or seg.write_cursor != 0:
                self._fail(
                    "log-free-list",
                    f"after {event or 'mutation'}: free segment {seg.index} "
                    f"not empty (live {seg.live_bytes}, cursor "
                    f"{seg.write_cursor})", event=event, segment=seg.index)

        # FTL write-amplification ledger (when the device models one):
        # every physical page program is a host write or a GC copy, and
        # the page map agrees with the per-block slot state.
        self._check_ftl(event)

        # Cached ranges of one handle never overlap: the interval map's
        # covered bytes must equal the entries' total size.
        spans: Dict[int, Tuple[int, int, int]] = {}
        for e in entries:
            lo, hi, total = spans.get(e.handle, (e.start, e.end, 0))
            spans[e.handle] = (min(lo, e.start), max(hi, e.end),
                               total + e.nbytes)
        for handle, (lo, hi, total) in spans.items():
            covered = mgr.mapping.coverage(handle, lo, hi)
            if covered != total:
                self._fail(
                    "mapping-overlap",
                    f"after {event or 'mutation'}: handle {handle} covers "
                    f"{covered} bytes in its interval map but entries sum "
                    f"to {total}", event=event, handle=handle)

    def _check_ftl(self, event: str) -> None:
        ftl = getattr(self.manager.ssd_queue.device, "ftl", None)
        if ftl is None:
            return
        from ..errors import StorageError
        try:
            ftl.verify()
        except StorageError as exc:
            self._fail("ftl-ledger",
                       f"after {event or 'mutation'}: {exc}", event=event)

    # ------------------------------------------------------------- final
    def final_check(self) -> None:
        """End-of-run conservation (call after the manager drained)."""
        self.check("final")
        if not self._conservation:
            return
        dirty = self.manager.mapping.dirty_bytes
        if dirty != 0:
            self._fail(
                "final-dirty",
                f"drain finished with {dirty} dirty bytes still on the SSD",
                dirty=dirty)
        accepted = self.client_write_bytes
        placed = self.disk_write_bytes + self.ssd_redirect_bytes
        if accepted != placed:
            self._fail(
                "write-conservation",
                f"accepted {accepted} write payload bytes but placed "
                f"{placed} (disk {self.disk_write_bytes} + SSD "
                f"{self.ssd_redirect_bytes})",
                accepted=accepted, placed=placed)
        if self.read_served_bytes != self.read_requested_bytes:
            self._fail(
                "read-conservation",
                f"served {self.read_served_bytes} read payload bytes of "
                f"{self.read_requested_bytes} requested",
                served=self.read_served_bytes,
                requested=self.read_requested_bytes)
        self._trace("final_check",
                    client_write=self.client_write_bytes,
                    disk_write=self.disk_write_bytes,
                    ssd_redirect=self.ssd_redirect_bytes,
                    writeback=self.writeback_bytes,
                    superseded=self.superseded_bytes,
                    forfeited=self.forfeited_bytes,
                    fill=self.fill_bytes,
                    read_requested=self.read_requested_bytes,
                    read_served=self.read_served_bytes,
                    checks=self.checks)


def dirty_entry_dump(manager: "IBridgeManager", limit: int = 16) -> List[Dict]:
    """Compact view of a manager's dirty entries for stall dumps."""
    out = []
    for e in sorted((e for e in manager.mapping.entries if e.dirty),
                    key=lambda e: e.id)[:limit]:
        out.append({"id": e.id, "handle": e.handle, "start": e.start,
                    "end": e.end, "nbytes": e.nbytes, "kind": e.kind.value,
                    "busy": e.busy, "ssd_lbn": e.ssd_lbn})
    return out
