"""Livelock / stall watchdog for the simulated I/O system.

A stalled simulation is worse than a crashed one: the clock keeps
advancing (daemon polls, CFQ idle timers) while no actual I/O completes,
so a run appears to work and simply never finishes — exactly what a
writeback loop that never selects a flushable entry looks like.  The
watchdog samples every block queue once per window of *simulated* time
and fires when a full window passes with work pending at both sample
points and not a single block request completing anywhere.

On firing it emits a ``watchdog_stall`` trace record carrying the
per-queue depths, each manager's dirty-entry set, and a snapshot of the
event heap, then reports a violation (raising ``AuditError`` in strict
mode, which surfaces out of ``env.run()``).

Known limitation: a loop that never yields back to the event loop (pure
Python spin) freezes the interpreter before any watchdog process can
run; only invariants enforced *inside* the spinning code can catch that
class.  The manager's flush path therefore guarantees forward progress
per pass (see ``IBridgeManager._flush_some``), and the watchdog covers
the time-advancing stalls.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from .invariants import dirty_entry_dump

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..block.queue import BlockQueue
    from ..core.manager import IBridgeManager
    from .runtime import AuditRuntime


class LivelockWatchdog:
    """Fires when simulated time advances but no request completes."""

    def __init__(self, env, runtime: "AuditRuntime", window: float) -> None:
        self.env = env
        self.runtime = runtime
        self.window = window
        self._queues: List["BlockQueue"] = []
        self._managers: List["IBridgeManager"] = []
        self._stopped = False
        self.fired = 0
        self._prev: Optional[tuple] = None  # (completed, pending)
        env.process(self._run(), name="audit-watchdog")

    def watch_queue(self, queue: "BlockQueue") -> None:
        self._queues.append(queue)

    def watch_manager(self, manager: "IBridgeManager") -> None:
        self._managers.append(manager)

    def stop(self) -> None:
        """Stop at the next tick (lets ``env.run()`` drain to quiet)."""
        self._stopped = True

    # ------------------------------------------------------------- process
    def _run(self):
        while True:
            yield self.env.timeout(self.window)
            if self._stopped:
                return
            completed = sum(q.completed for q in self._queues)
            pending = sum(q.pending for q in self._queues)
            # Injected faults legitimately stall queues (a fail-stopped
            # device completes nothing by design).  Stand down while any
            # fault is active and for one full window after the last
            # transition, and restart the no-progress comparison.
            if (self.runtime.active_faults > 0
                    or self.env.now - self.runtime.last_fault_transition
                    < self.window):
                self._prev = None
                continue
            if (self._prev is not None
                    and pending > 0 and self._prev[1] > 0
                    and completed == self._prev[0]):
                self._fire(completed, pending)
            self._prev = (completed, pending)

    def _fire(self, completed: int, pending: int) -> None:
        self.fired += 1
        queues = [{"name": q.name, "pending": q.pending, "busy": q.busy,
                   "dispatches": q.dispatches, "completed": q.completed}
                  for q in self._queues]
        managers = [{"server": m.server_id,
                     "dirty_bytes": m.mapping.dirty_bytes,
                     "dirty_entries": dirty_entry_dump(m)}
                    for m in self._managers]
        events = self.env.queue_snapshot(limit=40)
        self.runtime.trace.emit(self.env.now, "watchdog_stall",
                                window=self.window, completed=completed,
                                pending=pending, queues=queues,
                                managers=managers, event_heap=events)
        stuck = ", ".join(f"{q['name']}={q['pending']}" for q in queues
                          if q["pending"])
        self.runtime.violation(
            "livelock",
            f"no block request completed for {self.window} simulated "
            f"seconds with {pending} pending ({stuck}); see the "
            f"watchdog_stall trace record for queue depths, dirty entries "
            f"and the event heap",
            pending=pending, completed=completed)
