"""Structured event-trace sink shared by the auditors and the watchdog.

Every audit-relevant event (byte movements, cache mutations, violations,
watchdog dumps) is recorded as one flat dict with a simulated timestamp
and a ``kind``.  The trace keeps a bounded in-memory ring for test
introspection and can mirror every record to a JSON-lines file so a
failing run is replayable offline::

    {"t": 0.004096, "kind": "ssd_write", "server": 0, "nbytes": 4096, ...}

Records are append-only and self-contained; a violation record carries
the full invariant message, so ``grep '"violation"' trace.jsonl`` finds
every failure with its context.

Lifecycle contract: a trace that mirrors to a file owns that file
handle until :meth:`close` is called (idempotent; safe to call twice).
Use the trace as a context manager to guarantee the mirror is closed —
and therefore complete on disk — even when the run aborts mid-way::

    with EventTrace(path="trace.jsonl") as trace:
        ...   # emit() calls; a raised exception still closes the file

Violation records are additionally flushed to disk the moment they are
emitted, so a run killed right after detecting an invariant breach
still leaves the evidence in the mirror.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from typing import Callable, Dict, List, Optional


class EventTrace:
    """Bounded in-memory ring + optional JSONL mirror."""

    def __init__(self, path: Optional[str] = None, limit: int = 4096) -> None:
        self._records: deque = deque(maxlen=limit if limit > 0 else None)
        self._counts: Counter = Counter()
        self._path = path
        # Append, don't truncate: one experiment may build several
        # clusters in sequence (each with its own AuditRuntime) that all
        # mirror to the same path.  Whoever owns the path for a whole
        # invocation (e.g. the CLI) truncates it once up front.
        self._file = open(path, "a", encoding="utf-8") if path else None
        #: Optional observer called with every record as it is emitted
        #: (after ring/mirror bookkeeping).  The obs layer uses this to
        #: fold audit events into the unified span/event stream.
        self._sink: Optional[Callable[[Dict], None]] = None

    def set_sink(self, sink: Optional[Callable[[Dict], None]]) -> None:
        """Install (or clear, with ``None``) the per-record observer."""
        self._sink = sink

    def emit(self, time: float, kind: str, **fields) -> Dict:
        """Record one event; returns the record dict."""
        record = {"t": round(time, 9), "kind": kind}
        record.update(fields)
        self._records.append(record)
        self._counts[kind] += 1
        if self._file is not None:
            json.dump(record, self._file, default=str)
            self._file.write("\n")
            if kind == "violation":
                # An invariant breach may abort the run; make sure the
                # evidence reaches the disk before anything else happens.
                self._file.flush()
        if self._sink is not None:
            self._sink(record)
        return record

    def records(self, kind: Optional[str] = None) -> List[Dict]:
        """Retained records, optionally filtered by ``kind``."""
        if kind is None:
            return list(self._records)
        return [r for r in self._records if r["kind"] == kind]

    def count(self, kind: Optional[str] = None) -> int:
        """Events emitted over the trace's lifetime (not just retained)."""
        if kind is None:
            return sum(self._counts.values())
        return self._counts[kind]

    def summary(self) -> Dict[str, int]:
        """Lifetime event counts by kind."""
        return dict(sorted(self._counts.items()))

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        """Close the JSONL mirror (idempotent; ring stays readable)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "EventTrace":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
