"""Structured event-trace sink shared by the auditors and the watchdog.

Every audit-relevant event (byte movements, cache mutations, violations,
watchdog dumps) is recorded as one flat dict with a simulated timestamp
and a ``kind``.  The trace keeps a bounded in-memory ring for test
introspection and can mirror every record to a JSON-lines file so a
failing run is replayable offline::

    {"t": 0.004096, "kind": "ssd_write", "server": 0, "nbytes": 4096, ...}

Records are append-only and self-contained; a violation record carries
the full invariant message, so ``grep '"violation"' trace.jsonl`` finds
every failure with its context.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from typing import Dict, List, Optional


class EventTrace:
    """Bounded in-memory ring + optional JSONL mirror."""

    def __init__(self, path: Optional[str] = None, limit: int = 4096) -> None:
        self._records: deque = deque(maxlen=limit if limit > 0 else None)
        self._counts: Counter = Counter()
        self._path = path
        # Append, don't truncate: one experiment may build several
        # clusters in sequence (each with its own AuditRuntime) that all
        # mirror to the same path.  Whoever owns the path for a whole
        # invocation (e.g. the CLI) truncates it once up front.
        self._file = open(path, "a", encoding="utf-8") if path else None

    def emit(self, time: float, kind: str, **fields) -> Dict:
        """Record one event; returns the record dict."""
        record = {"t": round(time, 9), "kind": kind}
        record.update(fields)
        self._records.append(record)
        self._counts[kind] += 1
        if self._file is not None:
            json.dump(record, self._file, default=str)
            self._file.write("\n")
        return record

    def records(self, kind: Optional[str] = None) -> List[Dict]:
        """Retained records, optionally filtered by ``kind``."""
        if kind is None:
            return list(self._records)
        return [r for r in self._records if r["kind"] == kind]

    def count(self, kind: Optional[str] = None) -> int:
        """Events emitted over the trace's lifetime (not just retained)."""
        if kind is None:
            return sum(self._counts.values())
        return self._counts[kind]

    def summary(self) -> Dict[str, int]:
        """Lifetime event counts by kind."""
        return dict(sorted(self._counts.items()))

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
