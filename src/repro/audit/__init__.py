"""Online invariant auditing for the simulated I/O system.

Opt-in per run via :class:`repro.config.AuditConfig` (``ClusterConfig
.with_audit()``).  Three cooperating pieces, sharing one structured
event-trace sink:

* :class:`ManagerAuditor` — byte-conservation ledgers and cache-
  coherence shadow checks for each iBridge manager,
* :class:`LivelockWatchdog` — fires when simulated time advances but no
  block request completes while work is pending,
* :class:`EventTrace` — bounded in-memory ring with an optional JSONL
  mirror, so a failing run is replayable offline.

See docs/AUDITING.md for the invariant catalogue and trace format.
"""

from .invariants import ManagerAuditor
from .runtime import AuditRuntime
from .trace import EventTrace
from .watchdog import LivelockWatchdog

__all__ = [
    "AuditRuntime",
    "ManagerAuditor",
    "LivelockWatchdog",
    "EventTrace",
]
