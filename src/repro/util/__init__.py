"""Shared utilities: interval maps, deterministic RNG streams."""

from .intervals import IntervalMap
from .rng import rng_stream

__all__ = ["IntervalMap", "rng_stream"]
