"""Deterministic per-component random streams.

Every stochastic component (workload generators, trace synthesis,
competing-reader processes) derives an independent ``numpy`` Generator
from the cluster seed plus a stable component label, so adding a new
component never perturbs the draws of existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


def rng_stream(seed: int, label: str) -> np.random.Generator:
    """An independent, reproducible Generator for (seed, label)."""
    digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))
