"""Sorted, non-overlapping interval map over a byte address space.

Used by the local extent store (file offset → device LBN) and by
iBridge's SSD mapping table (server-file offset → SSD log location +
dirty flag).  Intervals are half-open ``[start, end)``.

Queries return clipped pieces as ``(start, end, value, delta)`` where
``delta = start - original_interval_start``; callers mapping to device
addresses compute ``lbn = value + delta``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Callable, Iterator, List, Optional, Tuple

from ..errors import StorageError

Piece = Tuple[int, int, Any, int]


class IntervalMap:
    """Maps half-open byte ranges to opaque values.

    ``set`` overwrites any overlapping portion of existing intervals
    (splitting them as needed).  An optional ``coalesce`` predicate
    merges adjacent intervals: given the left interval's
    ``(start, end, value)`` and the right's, it returns the merged value
    or ``None`` to keep them separate.
    """

    def __init__(self, coalesce: Optional[Callable[[Tuple[int, int, Any],
                                                    Tuple[int, int, Any]],
                                                   Optional[Any]]] = None) -> None:
        self._starts: List[int] = []
        self._ends: List[int] = []
        self._values: List[Any] = []
        self._coalesce = coalesce

    # ------------------------------------------------------------- basics
    def __len__(self) -> int:
        return len(self._starts)

    def __iter__(self) -> Iterator[Tuple[int, int, Any]]:
        return iter(zip(self._starts, self._ends, self._values))

    def items(self) -> List[Tuple[int, int, Any]]:
        """All intervals as (start, end, value), sorted by start."""
        return list(self)

    @property
    def total_bytes(self) -> int:
        """Total bytes covered by all intervals."""
        return sum(e - s for s, e in zip(self._starts, self._ends))

    @staticmethod
    def _check(start: int, end: int) -> None:
        if start < 0 or end <= start:
            raise StorageError(f"invalid interval [{start}, {end})")

    # ------------------------------------------------------------- mutation
    def set(self, start: int, end: int, value: Any) -> None:
        """Map ``[start, end)`` to ``value``, overwriting overlaps."""
        self._check(start, end)
        self.delete(start, end)
        idx = bisect_left(self._starts, start)
        self._starts.insert(idx, start)
        self._ends.insert(idx, end)
        self._values.insert(idx, value)
        self._try_coalesce(idx)

    def _try_coalesce(self, idx: int) -> None:
        if self._coalesce is None:
            return
        # Try merging with the right neighbour first, then the left.
        if idx + 1 < len(self._starts) and self._ends[idx] == self._starts[idx + 1]:
            merged = self._coalesce(
                (self._starts[idx], self._ends[idx], self._values[idx]),
                (self._starts[idx + 1], self._ends[idx + 1], self._values[idx + 1]))
            if merged is not None:
                self._ends[idx] = self._ends[idx + 1]
                self._values[idx] = merged
                del self._starts[idx + 1], self._ends[idx + 1], self._values[idx + 1]
        if idx > 0 and self._ends[idx - 1] == self._starts[idx]:
            merged = self._coalesce(
                (self._starts[idx - 1], self._ends[idx - 1], self._values[idx - 1]),
                (self._starts[idx], self._ends[idx], self._values[idx]))
            if merged is not None:
                self._ends[idx - 1] = self._ends[idx]
                self._values[idx - 1] = merged
                del self._starts[idx], self._ends[idx], self._values[idx]

    def delete(self, start: int, end: int) -> int:
        """Remove coverage of ``[start, end)``; returns bytes removed."""
        self._check(start, end)
        removed = 0
        # Find the first interval that could overlap.
        idx = bisect_right(self._ends, start)
        while idx < len(self._starts) and self._starts[idx] < end:
            s, e, v = self._starts[idx], self._ends[idx], self._values[idx]
            if s < start and e > end:
                # Split into two around the hole.
                self._ends[idx] = start
                self._starts.insert(idx + 1, end)
                self._ends.insert(idx + 1, e)
                self._values.insert(idx + 1, self._shift_value(v, end - s))
                removed += end - start
                return removed
            if s < start:
                # Right part of the interval is removed.
                removed += e - start
                self._ends[idx] = start
                idx += 1
            elif e > end:
                # Left part removed; shift remainder.
                removed += end - s
                self._values[idx] = self._shift_value(v, end - s)
                self._starts[idx] = end
                return removed
            else:
                # Fully covered: drop it.
                removed += e - s
                del self._starts[idx], self._ends[idx], self._values[idx]
        return removed

    @staticmethod
    def _shift_value(value: Any, delta: int) -> Any:
        """Adjust a value when its interval's start moves by ``delta``.

        Values may implement ``shifted(delta)``; integers (device LBNs)
        shift arithmetically; anything else is kept as-is along with the
        piece-level delta reported by queries.
        """
        if hasattr(value, "shifted"):
            return value.shifted(delta)
        if isinstance(value, int):
            return value + delta
        return value

    def clear(self) -> None:
        self._starts.clear()
        self._ends.clear()
        self._values.clear()

    # ------------------------------------------------------------- queries
    def get(self, start: int, end: int) -> List[Piece]:
        """Clipped pieces overlapping ``[start, end)``."""
        self._check(start, end)
        out: List[Piece] = []
        idx = bisect_right(self._ends, start)
        while idx < len(self._starts) and self._starts[idx] < end:
            s, e, v = self._starts[idx], self._ends[idx], self._values[idx]
            cs, ce = max(s, start), min(e, end)
            if cs < ce:
                out.append((cs, ce, v, cs - s))
            idx += 1
        return out

    def gaps(self, start: int, end: int) -> List[Tuple[int, int]]:
        """Uncovered sub-ranges of ``[start, end)``."""
        self._check(start, end)
        out: List[Tuple[int, int]] = []
        cursor = start
        for cs, ce, _v, _d in self.get(start, end):
            if cs > cursor:
                out.append((cursor, cs))
            cursor = max(cursor, ce)
        if cursor < end:
            out.append((cursor, end))
        return out

    def covered_bytes(self, start: int, end: int) -> int:
        """Bytes of ``[start, end)`` that are mapped."""
        return sum(ce - cs for cs, ce, _v, _d in self.get(start, end))

    def is_covered(self, start: int, end: int) -> bool:
        """True when every byte of ``[start, end)`` is mapped."""
        return self.covered_bytes(start, end) == end - start

    def value_at(self, offset: int) -> Optional[Any]:
        """The value covering ``offset``, or None."""
        pieces = self.get(offset, offset + 1)
        return pieces[0][2] if pieces else None
