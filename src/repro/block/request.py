"""Block-layer request representation.

A :class:`BlockRequest` is a contiguous device-level I/O.  The elevator
may merge contiguous requests of the same direction into one dispatch;
the dispatched unit keeps its member requests so each original waiter
is completed when the merged I/O finishes.
"""

from __future__ import annotations

import itertools
from typing import Any, List, Optional

from ..devices.base import Op
from ..errors import StorageError
from ..sim import Environment, Event

_ids = itertools.count(1)


class BlockRequest:
    """One contiguous device I/O submitted to a scheduler."""

    __slots__ = ("id", "op", "lbn", "nbytes", "stream", "submit_time",
                 "done", "meta", "dispatch_time", "complete_time", "span")

    def __init__(self, env: Environment, op: Op, lbn: int, nbytes: int,
                 stream: int = 0, meta: Any = None) -> None:
        if nbytes <= 0:
            raise StorageError(f"block request size must be positive, got {nbytes}")
        if lbn < 0:
            raise StorageError(f"negative LBN {lbn}")
        self.id = next(_ids)
        self.op = op
        self.lbn = int(lbn)
        self.nbytes = int(nbytes)
        self.stream = stream
        self.submit_time = env.now
        self.done: Event = env.event()
        self.meta = meta
        self.dispatch_time: Optional[float] = None
        self.complete_time: Optional[float] = None
        #: Open observability span (queue-wait, then device-service)
        #: when the submitter asked for tracing; None otherwise.
        self.span = None

    @property
    def end(self) -> int:
        """First byte address past this request."""
        return self.lbn + self.nbytes

    @property
    def latency(self) -> Optional[float]:
        """Submit-to-complete latency, once completed."""
        if self.complete_time is None:
            return None
        return self.complete_time - self.submit_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<BlockRequest #{self.id} {self.op.value} "
                f"[{self.lbn},{self.end}) stream={self.stream}>")


class Dispatch:
    """A unit of work handed to the device: one or more merged requests."""

    __slots__ = ("op", "lbn", "nbytes", "members", "born")

    def __init__(self, first: BlockRequest) -> None:
        self.op = first.op
        self.lbn = first.lbn
        self.nbytes = first.nbytes
        self.members: List[BlockRequest] = [first]
        self.born = first.submit_time

    def within_merge_window(self, req: BlockRequest, window: float) -> bool:
        """Is ``req`` close enough in time to merge into this dispatch?"""
        return abs(req.submit_time - self.born) <= window

    @property
    def end(self) -> int:
        return self.lbn + self.nbytes

    def can_back_merge(self, req: BlockRequest, limit: int) -> bool:
        """``req`` starts exactly where this dispatch ends (same op)."""
        return (req.op is self.op and req.lbn == self.end
                and self.nbytes + req.nbytes <= limit)

    def can_front_merge(self, req: BlockRequest, limit: int) -> bool:
        """``req`` ends exactly where this dispatch starts (same op)."""
        return (req.op is self.op and req.end == self.lbn
                and self.nbytes + req.nbytes <= limit)

    def back_merge(self, req: BlockRequest) -> None:
        self.members.append(req)
        self.nbytes += req.nbytes

    def front_merge(self, req: BlockRequest) -> None:
        self.members.append(req)
        self.lbn = req.lbn
        self.nbytes += req.nbytes

    def absorb(self, other: "Dispatch") -> None:
        """Back-merge a whole queued dispatch into this one."""
        self.members.extend(other.members)
        self.nbytes += other.nbytes

    def absorb_front(self, other: "Dispatch") -> None:
        """Front-merge a whole queued dispatch into this one."""
        self.members.extend(other.members)
        self.lbn = other.lbn
        self.nbytes += other.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Dispatch {self.op.value} [{self.lbn},{self.end}) "
                f"x{len(self.members)}>")
