"""Block-level dispatch tracing, modelled after ``blktrace``.

The paper uses blktrace to show the *dispatched* request-size
distributions (Figs. 2(c)–(e) and Fig. 5), in units of 512-byte
sectors.  :class:`BlockTracer` records every dispatch the device runner
issues; :meth:`size_histogram` reproduces the figures' data.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..devices.base import Op
from ..units import to_sectors


@dataclass(frozen=True)
class TraceRecord:
    """One dispatched I/O as blktrace would log it."""

    time: float
    op: Op
    lbn: int
    nbytes: int
    merged: int  # number of original requests merged into this dispatch

    @property
    def sectors(self) -> int:
        return to_sectors(self.nbytes)


class BlockTracer:
    """Records dispatches; answers distribution queries."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: List[TraceRecord] = []
        #: Optional observer called with every record (even when in-memory
        #: retention is disabled); the obs layer uses this to fold block
        #: dispatches into the unified trace stream.
        self.sink = None

    def record(self, time: float, op: Op, lbn: int, nbytes: int,
               merged: int) -> None:
        if not self.enabled and self.sink is None:
            return
        rec = TraceRecord(time, op, lbn, nbytes, merged)
        if self.enabled:
            self.records.append(rec)
        if self.sink is not None:
            self.sink(rec)

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def size_histogram(self, op: Optional[Op] = None) -> Dict[int, int]:
        """{size_in_sectors: dispatch count}, optionally filtered by op."""
        counter: Counter[int] = Counter()
        for rec in self.records:
            if op is None or rec.op is op:
                counter[rec.sectors] += 1
        return dict(sorted(counter.items()))

    def size_distribution(self, op: Optional[Op] = None) -> Dict[int, float]:
        """{size_in_sectors: fraction of dispatches}."""
        hist = self.size_histogram(op)
        total = sum(hist.values())
        if total == 0:
            return {}
        return {size: count / total for size, count in hist.items()}

    def top_sizes(self, n: int = 5, op: Optional[Op] = None) -> List[Tuple[int, float]]:
        """The ``n`` most frequent dispatch sizes, as (sectors, fraction)."""
        dist = self.size_distribution(op)
        return sorted(dist.items(), key=lambda kv: -kv[1])[:n]

    def fraction_at_least(self, sectors: int, op: Optional[Op] = None) -> float:
        """Fraction of dispatches of at least ``sectors`` sectors."""
        dist = self.size_distribution(op)
        return sum(frac for size, frac in dist.items() if size >= sectors)

    def mean_size_sectors(self, op: Optional[Op] = None) -> float:
        """Mean dispatch size in sectors."""
        hist = self.size_histogram(op)
        total = sum(hist.values())
        if total == 0:
            return 0.0
        return sum(size * count for size, count in hist.items()) / total

    def merged_fraction(self) -> float:
        """Fraction of dispatches containing more than one request."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.merged > 1) / len(self.records)
