"""Scheduler interface and the Noop / Deadline elevators.

A scheduler holds pending :class:`BlockRequest` objects and decides the
dispatch order, merging contiguous requests up to the configured limit.
``select()`` returns either a :class:`Dispatch`, or an idle hint
``(None, deadline)`` telling the device runner to wait (CFQ idling), or
``(None, None)`` when empty.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Deque, Optional, Tuple

from ..config import SchedulerConfig
from ..errors import StorageError
from .request import BlockRequest, Dispatch

SelectResult = Tuple[Optional[Dispatch], Optional[float]]


class Scheduler(abc.ABC):
    """Base class for block I/O schedulers."""

    def __init__(self, config: SchedulerConfig) -> None:
        config.validate()
        self.config = config
        self._pending = 0

    def __len__(self) -> int:
        return self._pending

    @property
    def empty(self) -> bool:
        return self._pending == 0

    @abc.abstractmethod
    def add(self, req: BlockRequest) -> None:
        """Queue a request."""

    @abc.abstractmethod
    def select(self, now: float) -> SelectResult:
        """Pick the next dispatch (see module docstring)."""


class NoopScheduler(Scheduler):
    """FIFO with back/front merging at dispatch build time.

    This is Linux ``noop``: requests dispatch in arrival order; the only
    optimization is merging requests contiguous with the head of the
    queue.  The paper uses it for the SSD, where ordering does not
    matter but merging still amortizes per-command setup.
    """

    def __init__(self, config: SchedulerConfig) -> None:
        super().__init__(config)
        self._queue: Deque[BlockRequest] = deque()

    def add(self, req: BlockRequest) -> None:
        self._queue.append(req)
        self._pending += 1

    def select(self, now: float) -> SelectResult:
        if not self._queue:
            return None, None
        dispatch = Dispatch(self._queue.popleft())
        # Greedily absorb queued requests contiguous with the dispatch.
        merged = True
        limit = self.config.max_merge_bytes
        window = self.config.merge_window
        while merged and self._queue:
            merged = False
            for req in list(self._queue):
                if not dispatch.within_merge_window(req, window):
                    continue
                if dispatch.can_back_merge(req, limit):
                    self._queue.remove(req)
                    dispatch.back_merge(req)
                    merged = True
                elif dispatch.can_front_merge(req, limit):
                    self._queue.remove(req)
                    dispatch.front_merge(req)
                    merged = True
        self._pending -= len(dispatch.members)
        return dispatch, None


class DeadlineScheduler(Scheduler):
    """Simplified ``deadline``: C-LOOK elevator with an age bound.

    Requests are served in ascending LBN order from the current sweep
    position, but any request older than ``max_age`` is served first.
    Not used by the paper's configuration; provided as an ablation
    scheduler showing how a global elevator (as opposed to CFQ's
    per-process service) partially re-assembles interleaved streams.
    """

    def __init__(self, config: SchedulerConfig, max_age: float = 0.5) -> None:
        super().__init__(config)
        if max_age <= 0:
            raise StorageError("max_age must be positive")
        self.max_age = max_age
        self._sorted: list[BlockRequest] = []
        self._fifo: Deque[BlockRequest] = deque()
        self._position = 0

    def add(self, req: BlockRequest) -> None:
        # Insertion sort keyed by LBN; queues are short in practice.
        idx = len(self._sorted)
        for i, other in enumerate(self._sorted):
            if req.lbn < other.lbn:
                idx = i
                break
        self._sorted.insert(idx, req)
        self._fifo.append(req)
        self._pending += 1

    def _take(self, req: BlockRequest) -> None:
        self._sorted.remove(req)
        self._fifo.remove(req)

    def select(self, now: float) -> SelectResult:
        if not self._sorted:
            return None, None
        if self._fifo and now - self._fifo[0].submit_time > self.max_age:
            first = self._fifo[0]
        else:
            first = None
            for req in self._sorted:
                if req.lbn >= self._position:
                    first = req
                    break
            if first is None:  # wrap (C-LOOK)
                first = self._sorted[0]
        self._take(first)
        dispatch = Dispatch(first)
        limit = self.config.max_merge_bytes
        window = self.config.merge_window
        merged = True
        while merged:
            merged = False
            for req in list(self._sorted):
                if not dispatch.within_merge_window(req, window):
                    continue
                if dispatch.can_back_merge(req, limit):
                    self._take(req)
                    dispatch.back_merge(req)
                    merged = True
                elif dispatch.can_front_merge(req, limit):
                    self._take(req)
                    dispatch.front_merge(req)
                    merged = True
        self._position = dispatch.end
        self._pending -= len(dispatch.members)
        return dispatch, None
