"""The device queue runner: glue between a scheduler and a device model.

One :class:`BlockQueue` per physical device.  Submitted requests enter
the scheduler; a single runner process repeatedly asks the scheduler
for the next dispatch, charges the device model for it, records it in
the tracer, and completes the member requests.  The runner honours CFQ
idle hints (wait briefly for an anticipated request) and exposes idle
state so iBridge's writeback daemon can run "during quiet I/O-device
periods" as the paper specifies.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..config import SchedulerConfig
from ..devices.base import Device, Op
from ..errors import StorageError
from ..sim import Environment, Event
from .blktrace import BlockTracer
from .cfq import CFQScheduler
from .request import BlockRequest, Dispatch
from .scheduler import DeadlineScheduler, NoopScheduler, Scheduler


def make_scheduler(config: SchedulerConfig) -> Scheduler:
    """Instantiate the scheduler named by ``config.kind``."""
    if config.kind == "cfq":
        return CFQScheduler(config)
    if config.kind == "noop":
        return NoopScheduler(config)
    if config.kind == "deadline":
        return DeadlineScheduler(config)
    raise StorageError(f"unknown scheduler kind {config.kind!r}")


class BlockQueue:
    """Queue + runner for one device."""

    def __init__(self, env: Environment, device: Device,
                 scheduler: Scheduler, tracer: Optional[BlockTracer] = None,
                 name: str = "blkq") -> None:
        self.env = env
        self.device = device
        self.scheduler = scheduler
        # Note: an empty BlockTracer is falsy (it defines __len__), so an
        # explicit None test is required here.
        self.tracer = tracer if tracer is not None else BlockTracer(enabled=False)
        #: Observability tracer (:class:`repro.obs.span.Tracer`); wired
        #: by the cluster's ObsRuntime, None on untraced runs.
        self.obs = None
        self.name = name
        self._arrival: Event = env.event()
        self._busy = False
        self._pause_depth = 0
        self._resume_evt: Optional[Event] = None
        self._inflight = 0
        self._last_activity = env.now
        self._last_service_end = env.now
        self._drain_waiters: List[Event] = []
        self.dispatches = 0
        #: Block requests completed over the queue's lifetime.  The
        #: audit watchdog reads this to detect stalls: simulated time
        #: advancing while no request on any queue completes.
        self.completed = 0
        env.process(self._run(), name=f"{name}-runner")

    # -- public API ---------------------------------------------------
    def submit(self, op: Op, lbn: int, nbytes: int, stream: int = 0,
               meta: Any = None, obs_parent=None) -> BlockRequest:
        """Queue an I/O; the returned request's ``done`` event fires on
        completion with the request itself as value.

        ``obs_parent`` (a :class:`repro.obs.span.Span`) requests span
        tracing for this I/O: a queue-wait span opens now, flips to a
        device-service span at dispatch.  Background traffic passes
        nothing and stays untraced.
        """
        self.device.check_range(lbn, nbytes)
        req = BlockRequest(self.env, op, lbn, nbytes, stream=stream, meta=meta)
        obs = self.obs
        if obs is not None and obs_parent is not None:
            req.span = obs.start("blk.wait", "queue", obs_parent.trace_id,
                                 self.env.now, parent=obs_parent,
                                 dev=self.name, op=op.value, nbytes=nbytes)
        self.scheduler.add(req)
        self._inflight += 1
        self._last_activity = self.env.now
        if not self._arrival.triggered:
            self._arrival.succeed()
        return req

    @property
    def pending(self) -> int:
        """Requests queued or being served."""
        return self._inflight

    @property
    def busy(self) -> bool:
        """True while the device is actively serving a dispatch."""
        return self._busy

    def idle_duration(self, now: Optional[float] = None) -> float:
        """How long the queue has been completely idle (0 when active)."""
        if self._busy or self._inflight > 0 or self._pause_depth:
            return 0.0
        return (now if now is not None else self.env.now) - self._last_activity

    def quiesce(self) -> Event:
        """Event that fires once the queue is empty and the device idle."""
        ev = self.env.event()
        if self._inflight == 0 and not self._busy:
            ev.succeed()
        else:
            self._drain_waiters.append(ev)
        return ev

    @property
    def paused(self) -> bool:
        """True while dispatching is suspended (device fail-stop)."""
        return self._pause_depth > 0

    def pause(self) -> None:
        """Suspend dispatching: a fail-stop window on the device.

        The dispatch in flight (if any) completes — it was already on
        the platter — but nothing further is issued until
        :meth:`resume`.  Queued and newly submitted requests simply
        wait, modelling an outage the upper layers ride out via
        timeout/retry or degraded modes.

        Pauses nest: a server crash pauses every queue on the server,
        and a device fail-stop window may overlap the crash on one of
        them.  Each holder must release its own pause before dispatch
        restarts — with a boolean flag, the server *restart* would lift
        the device window's pause early and dispatch into a device
        still in fail-stop (found by repro.chaos, seed 10).
        """
        self._pause_depth += 1

    def resume(self) -> None:
        """Release one pause hold; dispatching restarts at zero holds."""
        if self._pause_depth == 0:
            return
        self._pause_depth -= 1
        if self._pause_depth:
            return
        if self._resume_evt is not None and not self._resume_evt.triggered:
            self._resume_evt.succeed()
        self._resume_evt = None

    # -- runner ---------------------------------------------------------
    def _run(self):
        env = self.env
        while True:
            if self._pause_depth:
                if self._resume_evt is None:
                    self._resume_evt = env.event()
                yield self._resume_evt
                continue
            if self.scheduler.empty:
                # Sleep until something arrives.
                self._arrival = env.event()
                yield self._arrival
                continue
            dispatch, idle_until = self.scheduler.select(env.now)
            if dispatch is None:
                if idle_until is None:
                    continue
                # CFQ anticipation: wait for either the idle deadline or
                # a new arrival, whichever comes first.
                self._arrival = env.event()
                deadline = env.timeout(max(0.0, idle_until - env.now))
                yield env.any_of([self._arrival, deadline])
                continue
            yield from self._serve(dispatch)

    def _serve(self, dispatch: Dispatch):
        env = self.env
        self._busy = True
        # How long the device sat idle before this dispatch: rotational
        # state decays across idle gaps (see HDDConfig.sweep_idle_reset).
        idle_gap = max(0.0, env.now - self._last_service_end)
        service = self.device.serve(dispatch.op, dispatch.lbn, dispatch.nbytes,
                                    idle_gap=idle_gap)
        self.dispatches += 1
        # Zero-cost when tracing is off: skip the record() call frame
        # (and its TraceRecord build) on every dispatch.
        tracer = self.tracer
        if tracer.enabled or tracer.sink is not None:
            tracer.record(env.now, dispatch.op, dispatch.lbn,
                          dispatch.nbytes, len(dispatch.members))
        obs = self.obs
        # GC/storm share of this service time (SSD FTL model); exposed
        # as its own span nested in the service span so critical_path
        # attributes straggling stripe units to garbage collection.
        gc_stall = getattr(self.device, "last_gc_stall", 0.0)
        for member in dispatch.members:
            member.dispatch_time = env.now
            # Queue-wait ends at dispatch; the service span picks up as
            # a sibling (same parent) so the pair tiles [submit,
            # complete] exactly for the critical-path analyzer.
            span = member.span
            if span is not None and obs is not None:
                obs.finish(span, env.now)
                member.span = obs.start(
                    "blk.service", "service", span.trace_id, env.now,
                    parent_id=span.parent_id, dev=self.name,
                    op=dispatch.op.value, nbytes=member.nbytes,
                    merged=len(dispatch.members))
                if gc_stall > 0.0:
                    gc_span = obs.start(
                        "ssd.gc", "gc", span.trace_id, env.now,
                        parent=member.span, dev=self.name,
                        stall=gc_stall)
                    obs.finish(gc_span, env.now + gc_stall)
        yield env.timeout(service)
        self._busy = False
        self._inflight -= len(dispatch.members)
        self._last_activity = env.now
        self._last_service_end = env.now
        self.completed += len(dispatch.members)
        for member in dispatch.members:
            member.complete_time = env.now
            if member.span is not None and obs is not None:
                obs.finish(member.span, env.now)
            member.done.succeed(member)
        if self._inflight == 0 and self._drain_waiters:
            waiters, self._drain_waiters = self._drain_waiters, []
            for ev in waiters:
                ev.succeed()
