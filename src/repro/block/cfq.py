"""CFQ-like scheduler: per-stream queues, round-robin service, idling.

Linux CFQ gives each process (here: each *stream*, typically an MPI
rank or a server-internal actor) its own queue, serves queues
round-robin with a quantum, sorts within a queue by LBN, and idles
briefly on a queue hoping its owner submits an adjacent request.

Merging follows Linux elevator semantics: a new request merges into any
queued request it is contiguous with, *regardless of owning process*
(``global_merge``, the default).  Whether the contiguous partner is
still queued when the new request arrives is a timing race — under the
uncoordinated process arrivals that striping produces, the partner has
often already been dispatched, which is exactly the paper's explanation
for the collapsed block-level request sizes of Figs. 2(d)/(e).
Dispatch *order*, by contrast, is strictly per-stream: CFQ never
interleaves streams within a service slice, so cross-stream spatial
locality goes unexploited at dispatch time.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from ..config import SchedulerConfig
from .request import BlockRequest, Dispatch
from .scheduler import Scheduler, SelectResult


class _StreamQueue:
    """One stream's pending dispatches, kept sorted by LBN."""

    __slots__ = ("stream", "dispatches", "served_in_slice")

    def __init__(self, stream: int) -> None:
        self.stream = stream
        self.dispatches: List[Dispatch] = []
        self.served_in_slice = 0

    def add(self, dispatch: Dispatch) -> None:
        idx = len(self.dispatches)
        for i, other in enumerate(self.dispatches):
            if dispatch.lbn < other.lbn:
                idx = i
                break
        self.dispatches.insert(idx, dispatch)

    def pop_next(self, position: int) -> Dispatch:
        """Next dispatch at-or-after ``position`` (C-LOOK within stream)."""
        chosen = None
        for d in self.dispatches:
            if d.lbn >= position:
                chosen = d
                break
        if chosen is None:
            chosen = self.dispatches[0]
        self.dispatches.remove(chosen)
        return chosen


class CFQScheduler(Scheduler):
    """Round-robin per-stream service with quantum, idling and merging."""

    def __init__(self, config: SchedulerConfig) -> None:
        super().__init__(config)
        self._queues: "OrderedDict[int, _StreamQueue]" = OrderedDict()
        self._active: Optional[int] = None
        self._idle_until: Optional[float] = None
        self._position = 0
        self.insert_merges = 0

    # ------------------------------------------------------------- insert
    def add(self, req: BlockRequest) -> None:
        self._pending += 1
        if self._try_insert_merge(req):
            self.insert_merges += 1
            if req.stream == self._active:
                self._idle_until = None
            return
        q = self._queues.get(req.stream)
        if q is None:
            q = _StreamQueue(req.stream)
            self._queues[req.stream] = q
        q.add(Dispatch(req))
        if req.stream == self._active:
            # The anticipated request arrived; cancel the idle window.
            self._idle_until = None

    def _try_insert_merge(self, req: BlockRequest) -> bool:
        """Linux elv_merge: absorb ``req`` into a contiguous queued
        dispatch (any stream when global_merge, else same stream)."""
        limit = self.config.max_merge_bytes
        window = self.config.merge_window
        queues = (self._queues.values() if self.config.global_merge
                  else [q for s, q in self._queues.items() if s == req.stream])
        for q in queues:
            for dispatch in q.dispatches:
                if not dispatch.within_merge_window(req, window):
                    continue
                if dispatch.can_back_merge(req, limit):
                    dispatch.back_merge(req)
                    return True
                if dispatch.can_front_merge(req, limit):
                    dispatch.front_merge(req)
                    # Front merge moves the dispatch's start; re-sort.
                    q.dispatches.remove(dispatch)
                    q.add(dispatch)
                    return True
        return False

    # ------------------------------------------------------------- dispatch
    def _rotate_to_next(self) -> Optional[_StreamQueue]:
        """Advance round-robin to the next non-empty stream queue."""
        if not self._queues:
            return None
        keys = list(self._queues.keys())
        if self._active in self._queues:
            start = keys.index(self._active) + 1
        else:
            start = 0
        order = keys[start:] + keys[:start]
        for key in order:
            q = self._queues[key]
            if q.dispatches:
                q.served_in_slice = 0
                self._active = key
                return q
            del self._queues[key]  # garbage-collect drained streams
        return None

    def select(self, now: float) -> SelectResult:
        if self._pending == 0:
            self._idle_until = None
            return None, None

        active_q = self._queues.get(self._active) if self._active is not None else None

        if active_q is not None and not active_q.dispatches:
            # Active stream is empty: idle briefly for its next request
            # (CFQ anticipation), unless the window already expired.
            if self.config.idle_window > 0:
                if self._idle_until is None:
                    self._idle_until = now + self.config.idle_window
                if now < self._idle_until:
                    return None, self._idle_until
            self._idle_until = None
            active_q = None

        if active_q is not None and active_q.served_in_slice >= self.config.quantum:
            active_q = None  # quantum exhausted, rotate

        if active_q is None:
            active_q = self._rotate_to_next()
            if active_q is None:
                return None, None

        dispatch = active_q.pop_next(self._position)
        active_q.served_in_slice += 1
        limit = self.config.max_merge_bytes
        window = self.config.merge_window

        # Late merge within the active stream: absorb queued dispatches
        # contiguous with the one being issued.
        merged = True
        while merged:
            merged = False
            for other in list(active_q.dispatches):
                if abs(other.born - dispatch.born) > window:
                    continue
                if (dispatch.op is other.op
                        and other.lbn == dispatch.end
                        and dispatch.nbytes + other.nbytes <= limit):
                    active_q.dispatches.remove(other)
                    dispatch.absorb(other)
                    merged = True
                elif (dispatch.op is other.op
                        and other.end == dispatch.lbn
                        and dispatch.nbytes + other.nbytes <= limit):
                    active_q.dispatches.remove(other)
                    dispatch.absorb_front(other)
                    merged = True

        self._pending -= len(dispatch.members)
        self._position = dispatch.end
        self._idle_until = None
        return dispatch, None
