"""Block layer: requests, elevators/schedulers, tracing, device queues."""

from .blktrace import BlockTracer, TraceRecord
from .cfq import CFQScheduler
from .queue import BlockQueue, make_scheduler
from .request import BlockRequest, Dispatch
from .scheduler import DeadlineScheduler, NoopScheduler, Scheduler

__all__ = [
    "BlockRequest",
    "Dispatch",
    "Scheduler",
    "NoopScheduler",
    "DeadlineScheduler",
    "CFQScheduler",
    "BlockQueue",
    "make_scheduler",
    "BlockTracer",
    "TraceRecord",
]
